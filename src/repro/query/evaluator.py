"""Reference evaluator for the extended-XQuery subset.

Evaluates a parsed :class:`~repro.query.ast.Query` against an
:class:`~repro.xmldb.store.XMLStore` by streaming tuples of variable
bindings through the FLWOR clauses:

- ``For`` multiplies tuples over the items of its source expression;
- ``Let`` binds whole sequences;
- ``Where`` filters;
- ``Score`` calls the registered scoring function and assigns the result
  to the bound node's ``score``;
- ``Pick`` is blocking: it gathers every node bound to the variable,
  applies the stack-based Pick access method per owning tree, and keeps
  the tuples whose nodes were picked;
- ``Return`` constructs one result per surviving tuple; ``Threshold``
  filters (tuple- or result-context conditions), ``Sortby`` ranks
  descending, ``stop after k`` truncates.

Value semantics: element text is tokenized (lowercased terms, like the
index), so string comparisons are case-insensitive on token sequences —
``sname/text() = "Doe"`` matches the stored ``Doe``.  Numeric-looking
operands compare numerically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.access.pick import PickAccess
from repro.core.trees import SNode, STree, tree_from_document
from repro.errors import QueryCompileError
from repro.query.ast import (
    BoolExpr,
    Comparison,
    ContainsVar,
    DocCall,
    ElementCtor,
    Expr,
    FLWOR,
    ForClause,
    FuncCall,
    LetClause,
    Literal,
    PathExpr,
    PickClause,
    Query,
    ScoreClause,
    Step,
    TermSet,
    TextContent,
    VarRef,
    WhereClause,
)
from repro.query.functions import FunctionRegistry, default_registry
from repro.query.parser import parse_query
from repro.xmldb.store import XMLStore
from repro.xmldb.text import tokenize_text

Value = Union[SNode, str, float, List]
Env = Dict[str, Value]


def as_sequence(value: Value) -> List:
    """Normalize a value to a list of items."""
    if isinstance(value, list):
        return value
    if value is None:
        return []
    return [value]


def node_text(node: SNode) -> str:
    """Tokenized subtree text of a node, space-joined."""
    return " ".join(node.subtree_words())


def to_text(value: Value) -> str:
    """Coerce any value to text."""
    if isinstance(value, SNode):
        return node_text(value)
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, list):
        return " ".join(to_text(v) for v in value)
    return str(value)


def to_number(value: Value) -> Optional[float]:
    """Coerce to a float if possible, else None."""
    if isinstance(value, float):
        return value
    if isinstance(value, int):
        return float(value)
    if isinstance(value, SNode):
        return to_number(node_text(value))
    if isinstance(value, list):
        return to_number(value[0]) if value else None
    try:
        return float(str(value))
    except (TypeError, ValueError):
        return None


def is_truthy(value: Value) -> bool:
    """Effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return bool(value)
    return value is not None


def subtree_contains(root: SNode, target: SNode) -> bool:
    """Identity containment: is ``target`` a node of ``root``'s subtree?"""
    for n in root.preorder():
        if n is target:
            return True
    return False


class QueryEvaluator:
    """Evaluates queries against one store."""

    def __init__(self, store: XMLStore,
                 registry: Optional[FunctionRegistry] = None):
        from repro.query.functions import QueryContext

        self.store = store
        self.registry = registry or default_registry()
        self.context = QueryContext(store)
        self._doc_trees: Dict[str, STree] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def evaluate(self, query: Query) -> List[STree]:
        """Evaluate a parsed query; results are scored trees."""
        value = self.eval_expr(query.body, {}, None)
        out: List[STree] = []
        for item in as_sequence(value):
            if isinstance(item, SNode):
                out.append(STree(item))
            else:
                node = SNode("value", words=tokenize_text(to_text(item)))
                out.append(STree(node))
        return out

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    def doc_tree(self, name: str) -> STree:
        """Materialize (and cache) a stored document as a scored tree."""
        if name not in self._doc_trees:
            doc = self.store.document(name)
            self._doc_trees[name] = tree_from_document(doc)
        return self._doc_trees[name]

    # ------------------------------------------------------------------
    # Expression dispatch
    # ------------------------------------------------------------------

    def eval_expr(self, expr: Expr, env: Env,
                  context: Optional[SNode]) -> Value:
        if isinstance(expr, FLWOR):
            return self.eval_flwor(expr, env)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, TermSet):
            return list(expr.phrases)
        if isinstance(expr, VarRef):
            return self._lookup(expr.name, env)
        if isinstance(expr, DocCall):
            return self.doc_tree(expr.name).root
        if isinstance(expr, PathExpr):
            return self.eval_path(expr, env, context)
        if isinstance(expr, FuncCall):
            return self.eval_func(expr, env, context)
        if isinstance(expr, Comparison):
            return self.eval_comparison(expr, env, context)
        if isinstance(expr, BoolExpr):
            return self.eval_bool(expr, env, context)
        if isinstance(expr, ContainsVar):
            target = self._lookup(expr.var, env)
            return (
                context is not None
                and isinstance(target, SNode)
                and subtree_contains(context, target)
            )
        if isinstance(expr, ElementCtor):
            return self.construct(expr, env, context)
        if isinstance(expr, TextContent):
            return expr.text
        raise QueryCompileError(
            f"cannot evaluate {type(expr).__name__}"
        )

    def _lookup(self, name: str, env: Env) -> Value:
        try:
            return env[name]
        except KeyError:
            raise QueryCompileError(f"unbound variable ${name}")

    # ------------------------------------------------------------------
    # FLWOR
    # ------------------------------------------------------------------

    def eval_flwor(self, flwor: FLWOR, outer: Env) -> List:
        tuples: List[Env] = [dict(outer)]
        for clause in flwor.clauses:
            if isinstance(clause, ForClause):
                nxt: List[Env] = []
                for t in tuples:
                    for item in as_sequence(
                        self.eval_expr(clause.source, t, None)
                    ):
                        nt = dict(t)
                        nt[clause.var] = item
                        nxt.append(nt)
                tuples = nxt
            elif isinstance(clause, LetClause):
                for t in tuples:
                    t[clause.var] = self.eval_expr(clause.source, t, None)
            elif isinstance(clause, WhereClause):
                tuples = [
                    t for t in tuples
                    if is_truthy(self.eval_expr(clause.condition, t, None))
                ]
            elif isinstance(clause, ScoreClause):
                self._apply_score(clause, tuples)
            elif isinstance(clause, PickClause):
                tuples = self._apply_pick(clause, tuples)
            else:  # pragma: no cover
                raise QueryCompileError(
                    f"unknown clause {type(clause).__name__}"
                )

        pairs = []
        for t in tuples:
            result = self.eval_expr(flwor.return_expr, t, None)
            pairs.append((t, result))

        if flwor.threshold is not None:
            cond = flwor.threshold.condition
            kept = []
            for t, result in pairs:
                ctx = result if isinstance(result, SNode) else None
                if is_truthy(self.eval_expr(cond, t, ctx)):
                    kept.append((t, result))
            pairs = kept

        if flwor.sortby is not None:
            key_name = flwor.sortby.key
            def sort_key(pair):
                _t, result = pair
                if isinstance(result, SNode):
                    vals = self._step_children(result, key_name)
                    if vals:
                        num = to_number(vals[0])
                        if num is not None:
                            return num
                num = to_number(result)
                return num if num is not None else float("-inf")
            pairs.sort(key=sort_key, reverse=True)

        if flwor.threshold is not None and flwor.threshold.stop_after:
            pairs = pairs[: flwor.threshold.stop_after]

        return [result for _t, result in pairs]

    @staticmethod
    def _score_key(var: str) -> str:
        """Env key holding a tuple-local score override for ``$var``."""
        return f"@score:{var}"

    def _apply_score(self, clause: ScoreClause, tuples: List[Env]) -> None:
        fn = self.registry.score_function(clause.function.name)
        for t in tuples:
            node = t.get(clause.var)
            if not isinstance(node, SNode):
                raise QueryCompileError(
                    f"Score target ${clause.var} is not bound to a node"
                )
            args = [
                self.eval_expr(a, t, node) for a in clause.function.args
            ]
            if self.registry.needs_context(clause.function.name):
                score = float(fn(self.context, *args))
            else:
                score = float(fn(*args))
            # The score is a property of the *binding*: the same node may
            # be bound in several tuples with different scores (e.g. the
            # shared tix_prod_root in Query 3).  The tuple-local value is
            # authoritative for $v/@score; the node's score carries the
            # latest value for tree-level operators such as Pick (where
            # bindings are distinct nodes, so no ambiguity arises).
            t[self._score_key(clause.var)] = score
            node.score = score

    def _apply_pick(self, clause: PickClause,
                    tuples: List[Env]) -> List[Env]:
        criterion = self.registry.pick_criterion(clause.function.name)
        bound: List[SNode] = []
        for t in tuples:
            node = t.get(clause.var)
            if not isinstance(node, SNode):
                raise QueryCompileError(
                    f"Pick target ${clause.var} is not bound to a node"
                )
            bound.append(node)
        candidate_ids = {id(n) for n in bound}

        # Group candidates by owning tree: the highest bound ancestor of
        # each connected group serves as the root for the pick pass.  For
        # document-backed nodes the cached document tree is the owner.
        picked_ids = set()
        roots = self._owning_roots(bound)
        access = PickAccess(
            criterion, is_candidate=lambda n: id(n) in candidate_ids
        )
        for root in roots:
            for node in access.picked_nodes(STree(root)):
                picked_ids.add(id(node))
        return [
            t for t in tuples if id(t[clause.var]) in picked_ids
        ]

    def _owning_roots(self, nodes: List[SNode]) -> List[SNode]:
        """Distinct roots covering the given nodes: cached document roots
        plus any constructed trees reachable from the nodes themselves
        (found by checking which candidate contains which)."""
        roots: List[SNode] = []
        for tree in self._doc_trees.values():
            roots.append(tree.root)
        # Constructed nodes: any node not under a known root becomes a
        # root candidate unless another node contains it.
        uncovered = [
            n for n in nodes
            if not any(subtree_contains(r, n) for r in roots)
        ]
        for n in uncovered:
            if not any(
                other is not n and subtree_contains(other, n)
                for other in uncovered
            ):
                if n not in roots:
                    roots.append(n)
        return [r for r in roots if r is not None]

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def eval_path(self, path: PathExpr, env: Env,
                  context: Optional[SNode]) -> Value:
        # Tuple-local score override: $v/@score reads the binding's score
        # when a Score clause assigned one in this tuple.
        if (
            isinstance(path.root, VarRef)
            and len(path.steps) == 1
            and path.steps[0].axis == "attribute"
            and path.steps[0].test == "score"
        ):
            override = env.get(self._score_key(path.root.name))
            if override is not None:
                return override

        at_document_node = False
        if isinstance(path.root, DocCall):
            # document("x") denotes the *document node*: its only child
            # is the root element, and its descendants include the root
            # element itself.
            items: List[Value] = [self.doc_tree(path.root.name).root]
            at_document_node = True
        elif isinstance(path.root, VarRef):
            items = as_sequence(self._lookup(path.root.name, env))
        else:
            items = [context] if context is not None else []

        for step in path.steps:
            nxt: List[Value] = []
            for item in items:
                if not isinstance(item, SNode):
                    continue
                nxt.extend(
                    self._apply_step(item, step, env,
                                     from_document_node=at_document_node)
                )
            items = nxt
            at_document_node = False
        if len(items) == 1:
            return items[0]
        return items

    def _step_children(self, node: SNode, tag: str) -> List[SNode]:
        return [c for c in node.children if c.tag == tag]

    def _apply_step(self, node: SNode, step: Step,
                    env: Env, from_document_node: bool = False) -> List[Value]:
        if step.axis == "attribute":
            if step.test == "score":
                return [node.score] if node.score is not None else []
            val = node.attrs.get(step.test)
            return [val] if val is not None else []
        if step.axis == "text":
            return [" ".join(node.words)]
        if step.axis == "child":
            if from_document_node:
                # The document node's only child is the root element.
                cands = [node] if (
                    step.test == "*" or node.tag == step.test
                ) else []
            else:
                cands = [
                    c for c in node.children
                    if step.test == "*" or c.tag == step.test
                ]
        elif step.axis == "descendant" and from_document_node:
            # Descendants of the document node include the root element.
            cands = [
                n for n in node.preorder()
                if step.test == "*" or n.tag == step.test
            ]
        elif step.axis == "descendant":
            cands = [
                n for n in node.preorder()
                if n is not node and (step.test == "*" or n.tag == step.test)
            ]
        elif step.axis == "descendant-or-self":
            cands = [
                n for n in node.preorder()
                if step.test == "*" or n.tag == step.test
            ]
        else:  # pragma: no cover
            raise QueryCompileError(f"unknown axis {step.axis!r}")
        if step.predicates:
            cands = [
                c for c in cands
                if all(
                    is_truthy(self.eval_expr(p, env, c))
                    for p in step.predicates
                )
            ]
        return list(cands)

    # ------------------------------------------------------------------
    # Functions, comparisons, booleans
    # ------------------------------------------------------------------

    _BUILTINS = {"decimal", "count", "number", "string"}

    def eval_func(self, call: FuncCall, env: Env,
                  context: Optional[SNode]) -> Value:
        args = [self.eval_expr(a, env, context) for a in call.args]
        if call.name in self._BUILTINS:
            if call.name in ("decimal", "number"):
                num = to_number(args[0]) if args else None
                return num if num is not None else 0.0
            if call.name == "count":
                return float(len(as_sequence(args[0]))) if args else 0.0
            return to_text(args[0]) if args else ""
        if self.registry.has_score(call.name):
            fn = self.registry.score_function(call.name)
            unwrapped = [self._unwrap_single(a) for a in args]
            if self.registry.needs_context(call.name):
                return float(fn(self.context, *unwrapped))
            return float(fn(*unwrapped))
        raise QueryCompileError(f"unknown function {call.name!r}")

    @staticmethod
    def _unwrap_single(value: Value) -> Value:
        if isinstance(value, list) and len(value) == 1:
            return value[0]
        return value

    def eval_comparison(self, cmp: Comparison, env: Env,
                        context: Optional[SNode]) -> bool:
        left = self.eval_expr(cmp.left, env, context)
        right = self.eval_expr(cmp.right, env, context)
        # Existential semantics over sequences.
        for lv in as_sequence(left) or [None]:
            for rv in as_sequence(right) or [None]:
                if self._compare(cmp.op, lv, rv):
                    return True
        return False

    @staticmethod
    def _compare(op: str, left: Value, right: Value) -> bool:
        ln, rn = to_number(left), to_number(right)
        if ln is not None and rn is not None:
            lv, rv = ln, rn
        else:
            lv = to_text(left).strip().lower() if left is not None else ""
            rv = to_text(right).strip().lower() if right is not None else ""
        if op == "=":
            return lv == rv
        if op == "!=":
            return lv != rv
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        return lv >= rv

    def eval_bool(self, expr: BoolExpr, env: Env,
                  context: Optional[SNode]) -> bool:
        if expr.op == "not":
            return not is_truthy(
                self.eval_expr(expr.operands[0], env, context)
            )
        results = (
            is_truthy(self.eval_expr(op, env, context))
            for op in expr.operands
        )
        return any(results) if expr.op == "or" else all(results)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    def construct(self, ctor: ElementCtor, env: Env,
                  context: Optional[SNode]) -> SNode:
        node = SNode(ctor.tag, attrs=dict(ctor.attrs))
        for item in ctor.content:
            value = self.eval_expr(item, env, context)
            for v in as_sequence(value):
                if isinstance(v, SNode):
                    node.add_child(v.deep_copy())
                else:
                    # Whitespace split only: numeric text like "5.6" must
                    # survive verbatim (term tokenization would split it).
                    node.words.extend(to_text(v).split())
        # Propagate a score child/attribute convention: if the element
        # has a <score> child, mirror it onto the node score so Sortby
        # and downstream operators see it.
        for c in node.children:
            if c.tag == "score":
                num = to_number(c)
                if num is not None:
                    node.score = num
                break
        return node


def evaluate_query(store: XMLStore, query: Query,
                   registry: Optional[FunctionRegistry] = None) -> List[STree]:
    """Evaluate a parsed query against a store."""
    from repro import obs

    with obs.RECORDER.span("evaluate"):
        return QueryEvaluator(store, registry).evaluate(query)


def run_query(store: XMLStore, source: str,
              registry: Optional[FunctionRegistry] = None) -> List[STree]:
    """Parse and evaluate a query string."""
    from repro import obs

    with obs.RECORDER.span("parse"):
        query = parse_query(source)
    return evaluate_query(store, query, registry)
