"""AST for the extended-XQuery subset.

Nodes are small frozen dataclasses; the evaluator and the compiler both
walk this tree.  The grammar the parser accepts is documented in
:mod:`repro.query.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# ----------------------------------------------------------------------
# Path expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Step:
    """One path step.

    ``axis`` is ``child``, ``descendant``, ``descendant-or-self``,
    ``attribute``, or ``text``; ``test`` is a tag name or ``*`` (unused
    for text()).  ``predicates`` are boolean expressions evaluated with
    the step's node as context.
    """

    axis: str
    test: str = "*"
    predicates: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class PathExpr:
    """A path rooted at a document, a variable, or the context node."""

    root: Union["DocCall", "VarRef", None]  # None = context node
    steps: Tuple[Step, ...] = ()


@dataclass(frozen=True)
class DocCall:
    """``document("name")``"""

    name: str


@dataclass(frozen=True)
class VarRef:
    """``$x``"""

    name: str


# ----------------------------------------------------------------------
# General expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """String or numeric literal."""

    value: Union[str, float]


@dataclass(frozen=True)
class TermSet:
    """``{"a", "b"}`` — a set of phrases passed to a scoring function."""

    phrases: Tuple[str, ...]


@dataclass(frozen=True)
class FuncCall:
    """``Name(arg, …)``"""

    name: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in = != < <= > >="""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class BoolExpr:
    """``and`` / ``or`` / ``not`` combinations."""

    op: str  # "and" | "or" | "not"
    operands: Tuple["Expr", ...]


@dataclass(frozen=True)
class ContainsVar:
    """Predicate form ``[//$d]`` — the context node's subtree contains
    the node bound to ``$d``."""

    var: str


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ElementCtor:
    """``<tag attr="v">content…</tag>``; content items are literal text,
    enclosed expressions, or nested constructors."""

    tag: str
    attrs: Tuple[Tuple[str, str], ...] = ()
    content: Tuple["Expr", ...] = ()


@dataclass(frozen=True)
class TextContent:
    """Literal text inside an element constructor."""

    text: str


# ----------------------------------------------------------------------
# FLWOR
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ForClause:
    var: str
    source: "Expr"


@dataclass(frozen=True)
class LetClause:
    var: str
    source: "Expr"


@dataclass(frozen=True)
class WhereClause:
    condition: "Expr"


@dataclass(frozen=True)
class ScoreClause:
    """``Score $v using Fn(args…)``"""

    var: str
    function: FuncCall


@dataclass(frozen=True)
class PickClause:
    """``Pick $v using Fn($v)``"""

    var: str
    function: FuncCall


@dataclass(frozen=True)
class SortBy:
    """``Sortby(name)`` — rank results by the named value (descending,
    since the clause exists to rank by relevance)."""

    key: str


@dataclass(frozen=True)
class ThresholdClause:
    """``Threshold <cond> [stop after k]``"""

    condition: "Expr"
    stop_after: Optional[int] = None


Clause = Union[ForClause, LetClause, WhereClause, ScoreClause, PickClause]


@dataclass(frozen=True)
class FLWOR:
    clauses: Tuple[Clause, ...]
    return_expr: "Expr"
    sortby: Optional[SortBy] = None
    threshold: Optional[ThresholdClause] = None


Expr = Union[
    PathExpr, DocCall, VarRef, Literal, TermSet, FuncCall, Comparison,
    BoolExpr, ContainsVar, ElementCtor, TextContent, FLWOR,
]


@dataclass(frozen=True)
class Query:
    """A parsed query: a single expression (usually a FLWOR)."""

    body: Expr
