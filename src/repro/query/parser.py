"""Recursive-descent parser for the extended-XQuery subset.

Grammar (the shapes of Figure 10, plus obvious generalizations)::

    query      := expr
    expr       := flwor | ctor | orExpr | '(' expr ')'
    flwor      := clause+ 'Return' expr sortby? threshold?
    clause     := 'For' $v ('in' | ':=') expr
                | 'Let' $v ':=' expr
                | 'Where' orExpr
                | 'Score' $v 'using' funcCall
                | 'Pick' $v 'using' funcCall
    sortby     := 'Sortby' '(' name ')'
    threshold  := 'Threshold' orExpr ('stop' 'after' number)?
    ctor       := '<' name (name '=' string)* '>' content* '</' name '>'
    content    := '{' expr '}' | ctor | flwor | varPath | text
    orExpr     := andExpr ('or' andExpr)*
    andExpr    := cmp ('and' cmp)*
    cmp        := primary (('='|'!='|'<'|'<='|'>'|'>=') primary)?
    primary    := funcCall | termSet | literal | path | '(' expr ')'
    termSet    := '{' string (',' string)* '}'
    path       := ('document' '(' string ')' | $v | ε) step+ | $v
    step       := ('/' | '//') stepSpec
    stepSpec   := 'descendant-or-self' '::' '*'
                | 'text' '(' ')'
                | '@' name
                | (name | '*') ('[' orExpr ']')*

Inside predicates, a leading ``/`` is context-relative and ``//$d`` is the
containment test :class:`~repro.query.ast.ContainsVar`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    BoolExpr,
    Comparison,
    ContainsVar,
    DocCall,
    ElementCtor,
    Expr,
    FLWOR,
    ForClause,
    FuncCall,
    LetClause,
    Literal,
    PathExpr,
    PickClause,
    Query,
    ScoreClause,
    SortBy,
    Step,
    TermSet,
    TextContent,
    ThresholdClause,
    VarRef,
    WhereClause,
)
from repro.query.lexer import Token, tokenize_query

_CLAUSE_KEYWORDS = {"For", "Let", "Where", "Score", "Pick"}
_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.i = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[j]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if tok.type != "eof":
            self.i += 1
        return tok

    def error(self, message: str) -> QuerySyntaxError:
        tok = self.peek()
        return QuerySyntaxError(
            f"{message} (found {tok.value!r})", tok.line, tok.column
        )

    def expect(self, type_: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.type != type_ or (value is not None and tok.value != value):
            want = value or type_
            raise self.error(f"expected {want!r}")
        return self.advance()

    def at(self, type_: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.type == type_ and (value is None or tok.value == value)

    def accept(self, type_: str, value: Optional[str] = None) -> bool:
        if self.at(type_, value):
            self.advance()
            return True
        return False

    # -- entry --------------------------------------------------------------

    def parse(self) -> Query:
        body = self.parse_expr()
        if not self.at("eof"):
            raise self.error("trailing input after query")
        return Query(body)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        if (self.peek().type == "keyword"
                and self.peek().value in _CLAUSE_KEYWORDS):
            return self.parse_flwor()
        if self.at("symbol", "<"):
            return self.parse_ctor()
        if self.at("symbol", "("):
            self.advance()
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        return self.parse_or()

    def parse_flwor(self) -> FLWOR:
        clauses: List = []
        while (self.peek().type == "keyword"
               and self.peek().value in _CLAUSE_KEYWORDS):
            kw = self.advance().value
            if kw == "For":
                var = self.expect("var").value
                if not (self.accept("keyword", "in")
                        or self.accept("symbol", ":=")):
                    raise self.error(
                        "expected 'in' or ':=' after For variable"
                    )
                clauses.append(ForClause(var, self.parse_expr()))
            elif kw == "Let":
                var = self.expect("var").value
                self.expect("symbol", ":=")
                clauses.append(LetClause(var, self.parse_expr()))
            elif kw == "Where":
                clauses.append(WhereClause(self.parse_or()))
            elif kw == "Score":
                var = self.expect("var").value
                self.expect("keyword", "using")
                clauses.append(ScoreClause(var, self.parse_func_call()))
            else:  # Pick
                var = self.expect("var").value
                self.expect("keyword", "using")
                clauses.append(PickClause(var, self.parse_func_call()))
        self.expect("keyword", "Return")
        return_expr = self.parse_expr()
        sortby = None
        if self.accept("keyword", "Sortby"):
            self.expect("symbol", "(")
            key = self.expect("name").value
            self.expect("symbol", ")")
            sortby = SortBy(key)
        threshold = None
        if self.accept("keyword", "Threshold"):
            cond = self.parse_or()
            stop_after = None
            if self.accept("keyword", "stop"):
                self.expect("keyword", "after")
                stop_after = int(float(self.expect("number").value))
            threshold = ThresholdClause(cond, stop_after)
        # Sortby may also follow Threshold (either order accepted).
        if sortby is None and self.accept("keyword", "Sortby"):
            self.expect("symbol", "(")
            key = self.expect("name").value
            self.expect("symbol", ")")
            sortby = SortBy(key)
        return FLWOR(tuple(clauses), return_expr, sortby, threshold)

    # -- boolean / comparison -------------------------------------------------

    def parse_or(self) -> Expr:
        left = self.parse_and()
        operands = [left]
        while self.accept("keyword", "or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return left
        return BoolExpr("or", tuple(operands))

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        operands = [left]
        while self.accept("keyword", "and"):
            operands.append(self.parse_cmp())
        if len(operands) == 1:
            return left
        return BoolExpr("and", tuple(operands))

    def parse_cmp(self) -> Expr:
        if self.accept("keyword", "not"):
            self.expect("symbol", "(")
            inner = self.parse_or()
            self.expect("symbol", ")")
            return BoolExpr("not", (inner,))
        left = self.parse_primary()
        tok = self.peek()
        if tok.type == "symbol" and tok.value in _CMP_OPS:
            op = self.advance().value
            right = self.parse_primary()
            return Comparison(op, left, right)
        return left

    # -- primaries ------------------------------------------------------

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.type == "string":
            self.advance()
            return Literal(tok.value)
        if tok.type == "number":
            self.advance()
            return Literal(float(tok.value))
        if tok.type == "symbol" and tok.value == "{":
            return self.parse_term_set()
        if tok.type == "symbol" and tok.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        if tok.type == "name":
            if self.peek(1).type == "symbol" and self.peek(1).value == "(":
                if tok.value == "document":
                    return self.parse_path()
                return self.parse_func_call()
            # bare name: context-relative child path (e.g. 'simScore')
            if tok.value == "document":
                return self.parse_path()
            self.advance()
            path = PathExpr(None, (Step("child", tok.value),))
            return self._continue_path(path)
        if tok.type == "var" or (
            tok.type == "symbol" and tok.value in ("/", "//")
        ):
            return self.parse_path()
        raise self.error("expected an expression")

    def parse_term_set(self) -> TermSet:
        self.expect("symbol", "{")
        phrases = [self.expect("string").value]
        while self.accept("symbol", ","):
            phrases.append(self.expect("string").value)
        self.expect("symbol", "}")
        return TermSet(tuple(phrases))

    def parse_func_call(self) -> FuncCall:
        name = self.expect("name").value
        self.expect("symbol", "(")
        args: List[Expr] = []
        if not self.at("symbol", ")"):
            args.append(self.parse_expr())
            while self.accept("symbol", ","):
                args.append(self.parse_expr())
        self.expect("symbol", ")")
        return FuncCall(name, tuple(args))

    # -- paths ---------------------------------------------------------------

    def parse_path(self) -> Expr:
        tok = self.peek()
        root: Optional[Expr]
        if tok.type == "name" and tok.value == "document":
            self.advance()
            self.expect("symbol", "(")
            doc_name = self.expect("string").value
            self.expect("symbol", ")")
            root = DocCall(doc_name)
        elif tok.type == "var":
            self.advance()
            root = VarRef(tok.value)
        else:
            root = None  # context-relative
        path = PathExpr(root if root is not None else None, ())
        return self._continue_path(path)

    def _continue_path(self, path: PathExpr) -> Expr:
        steps = list(path.steps)
        while True:
            if self.at("symbol", "//"):
                self.advance()
                steps.append(self.parse_step("descendant"))
            elif self.at("symbol", "/"):
                self.advance()
                steps.append(self.parse_step("child"))
            else:
                break
        if not steps and isinstance(path.root, VarRef):
            return path.root
        return PathExpr(path.root, tuple(steps))

    def parse_step(self, axis: str) -> Step:
        tok = self.peek()
        if tok.type == "symbol" and tok.value == "@":
            self.advance()
            name = self.expect("name").value
            return Step("attribute", name)
        if tok.type == "name" and tok.value == "text" \
                and self.peek(1).value == "(":
            self.advance()
            self.expect("symbol", "(")
            self.expect("symbol", ")")
            return Step("text")
        if tok.type == "symbol" and tok.value == "*":
            self.advance()
            return Step(axis, "*", self.parse_predicates())
        name_tok = self.expect("name")
        # descendant-or-self::* (the ad* relationship)
        if self.at("symbol", "::"):
            self.advance()
            self.expect("symbol", "*")
            if name_tok.value != "descendant-or-self":
                raise self.error(
                    f"unsupported axis {name_tok.value!r}"
                )
            return Step("descendant-or-self", "*", self.parse_predicates())
        return Step(axis, name_tok.value, self.parse_predicates())

    def parse_predicates(self) -> Tuple[Expr, ...]:
        preds: List[Expr] = []
        while self.at("symbol", "["):
            self.advance()
            preds.append(self.parse_predicate_body())
            self.expect("symbol", "]")
        return tuple(preds)

    def parse_predicate_body(self) -> Expr:
        # [//$d] — containment of a bound variable
        if self.at("symbol", "//") and self.peek(1).type == "var":
            self.advance()
            var = self.advance().value
            return ContainsVar(var)
        return self.parse_or()

    # -- element constructors -------------------------------------------

    def parse_ctor(self) -> ElementCtor:
        self.expect("symbol", "<")
        tag = self.expect("name").value
        attrs: List[Tuple[str, str]] = []
        while self.peek().type == "name":
            aname = self.advance().value
            self.expect("symbol", "=")
            attrs.append((aname, self.expect("string").value))
        self.expect("symbol", ">")
        content: List[Expr] = []
        text_parts: List[str] = []

        def flush_text() -> None:
            if text_parts:
                content.append(TextContent(" ".join(text_parts)))
                text_parts.clear()

        while True:
            tok = self.peek()
            if tok.type == "eof":
                raise self.error(f"unterminated <{tag}> constructor")
            if tok.type == "symbol" and tok.value == "<":
                nxt = self.peek(1)
                if nxt.type == "symbol" and nxt.value == "/":
                    # closing tag
                    flush_text()
                    self.advance()  # <
                    self.advance()  # /
                    close = self.expect("name").value
                    if close != tag:
                        raise self.error(
                            f"mismatched </{close}>, expected </{tag}>"
                        )
                    self.expect("symbol", ">")
                    return ElementCtor(tag, tuple(attrs), tuple(content))
                flush_text()
                content.append(self.parse_ctor())
                continue
            if tok.type == "symbol" and tok.value == "{":
                flush_text()
                self.advance()
                content.append(self.parse_expr())
                self.expect("symbol", "}")
                continue
            if tok.type == "keyword" and tok.value in _CLAUSE_KEYWORDS:
                flush_text()
                content.append(self.parse_flwor())
                continue
            if tok.type == "var":
                flush_text()
                content.append(self.parse_path())
                continue
            if tok.type == "name" and tok.value == "document":
                flush_text()
                content.append(self.parse_path())
                continue
            if tok.type == "name" and self.peek(1).value == "(":
                # Function call in element content, e.g.
                # <simScore>ScoreSim($at/text(), $bt/text())</simScore>
                flush_text()
                content.append(self.parse_func_call())
                continue
            if tok.type in ("name", "number", "string", "keyword"):
                text_parts.append(str(self.advance().value))
                continue
            if tok.type == "symbol" and tok.value in (",", "/", "*", "@"):
                text_parts.append(self.advance().value)
                continue
            raise self.error(
                f"unexpected {tok.value!r} inside <{tag}> constructor"
            )


def parse_query(source: str) -> Query:
    """Parse a query string into an AST."""
    return _Parser(tokenize_query(source)).parse()
