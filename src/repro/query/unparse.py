"""AST → query-text pretty printer.

``unparse(query)`` renders an AST back into valid extended-XQuery
surface syntax; ``parse(unparse(parse(q)))`` equals ``parse(q)`` (the
roundtrip property the tests assert).  Used by the CLI and by error
messages that want to show a normalized query.
"""

from __future__ import annotations

from typing import List

from repro.query.ast import (
    BoolExpr,
    Comparison,
    ContainsVar,
    DocCall,
    ElementCtor,
    Expr,
    FLWOR,
    ForClause,
    FuncCall,
    LetClause,
    Literal,
    PathExpr,
    PickClause,
    Query,
    ScoreClause,
    Step,
    TermSet,
    TextContent,
    VarRef,
    WhereClause,
)


def unparse(query: Query) -> str:
    """Render a parsed query back to source text."""
    return _expr(query.body)


def _string(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _number(value: float) -> str:
    """Render a float as a plain decimal the lexer accepts (no exponent
    notation), preserving the exact value."""
    s = f"{value:g}"
    if "e" in s or "E" in s:
        s = f"{value:.340f}".rstrip("0")
        if s.endswith("."):
            s += "0"
    return s


def _step(step: Step) -> str:
    if step.axis == "attribute":
        return f"@{step.test}"
    if step.axis == "text":
        return "text()"
    base = step.test
    if step.axis == "descendant-or-self":
        base = "descendant-or-self::*"
    preds = "".join(f"[{_expr(p)}]" for p in step.predicates)
    return base + preds


def _path(path: PathExpr) -> str:
    if isinstance(path.root, DocCall):
        out = f"document({_string(path.root.name)})"
    elif isinstance(path.root, VarRef):
        out = f"${path.root.name}"
    else:
        out = ""
    for step in path.steps:
        sep = "//" if step.axis in ("descendant", "descendant-or-self") \
            else "/"
        if step.axis in ("attribute", "text"):
            sep = "/"
        out += sep + _step(step)
    return out


def _expr(expr: Expr) -> str:
    if isinstance(expr, FLWOR):
        return _flwor(expr)
    if isinstance(expr, Literal):
        if isinstance(expr.value, float):
            return _number(expr.value)
        return _string(str(expr.value))
    if isinstance(expr, TermSet):
        inner = ", ".join(_string(p) for p in expr.phrases)
        return "{" + inner + "}"
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, DocCall):
        return f"document({_string(expr.name)})"
    if isinstance(expr, PathExpr):
        return _path(expr)
    if isinstance(expr, FuncCall):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Comparison):
        return f"{_expr(expr.left)} {expr.op} {_expr(expr.right)}"
    if isinstance(expr, BoolExpr):
        if expr.op == "not":
            return f"not({_expr(expr.operands[0])})"
        sep = f" {expr.op} "
        return sep.join(_expr(op) for op in expr.operands)
    if isinstance(expr, ContainsVar):
        return f"//${expr.var}"
    if isinstance(expr, ElementCtor):
        return _ctor(expr)
    if isinstance(expr, TextContent):
        return expr.text
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def _ctor(ctor: ElementCtor) -> str:
    attrs = "".join(f' {k}={_string(v)}' for k, v in ctor.attrs)
    parts: List[str] = [f"<{ctor.tag}{attrs}>"]
    for item in ctor.content:
        if isinstance(item, TextContent):
            parts.append(item.text)
        elif isinstance(item, ElementCtor):
            parts.append(_ctor(item))
        elif isinstance(item, FLWOR):
            parts.append(_flwor(item))
        elif isinstance(item, FuncCall):
            parts.append(_expr(item))
        elif isinstance(item, (PathExpr, VarRef)):
            parts.append(_expr(item))
        else:
            parts.append("{ " + _expr(item) + " }")
    parts.append(f"</{ctor.tag}>")
    return " ".join(parts)


def _flwor(flwor: FLWOR) -> str:
    lines: List[str] = []
    for clause in flwor.clauses:
        if isinstance(clause, ForClause):
            lines.append(f"For ${clause.var} in {_expr(clause.source)}")
        elif isinstance(clause, LetClause):
            source = _expr(clause.source)
            if isinstance(clause.source, (FLWOR, ElementCtor)):
                source = f"({source})"
            lines.append(f"Let ${clause.var} := {source}")
        elif isinstance(clause, WhereClause):
            lines.append(f"Where {_expr(clause.condition)}")
        elif isinstance(clause, ScoreClause):
            lines.append(
                f"Score ${clause.var} using {_expr(clause.function)}"
            )
        elif isinstance(clause, PickClause):
            lines.append(
                f"Pick ${clause.var} using {_expr(clause.function)}"
            )
    ret = _expr(flwor.return_expr)
    if isinstance(flwor.return_expr, FLWOR):
        ret = f"({ret})"
    lines.append(f"Return {ret}")
    if flwor.sortby is not None:
        lines.append(f"Sortby({flwor.sortby.key})")
    if flwor.threshold is not None:
        t = f"Threshold {_expr(flwor.threshold.condition)}"
        if flwor.threshold.stop_after is not None:
            t += f" stop after {flwor.threshold.stop_after}"
        lines.append(t)
    return "\n".join(lines)
