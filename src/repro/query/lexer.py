"""Lexer for the extended-XQuery subset.

Tokenizes the surface syntax of the paper's Figure 10 queries: FLWOR
keywords plus the IR extensions (``Score``, ``Pick``, ``Threshold``,
``Sortby``, ``stop after``), variables (``$name``), paths (``/``, ``//``,
``@``, ``::``), comparison operators, string/number literals, braces for
enclosed expressions and term sets, and inline element constructors
(``<tag>``, ``</tag>`` — recognized by the parser from ``<`` tokens).

Keywords are case-sensitive exactly as the paper writes them
(``For``/``Let``/``Return``…); ``in``, ``using``, ``stop``, ``after``,
``and``, ``or`` are lowercase.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import QuerySyntaxError

KEYWORDS = {
    "For", "Let", "Where", "Return", "Score", "Pick", "Threshold",
    "Sortby", "in", "using", "stop", "after", "and", "or", "not",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\(:.*?:\))
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<assign>:=)
  | (?P<dslash>//)
  | (?P<axis>::)
  | (?P<cmp><=|>=|!=|=|<|>)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<punct>[(){}\[\],/@*])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    """One lexical token with its source position (1-based)."""

    type: str   # keyword | name | var | string | number | symbol
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.type}, {self.value!r})"


def tokenize_query(source: str) -> List[Token]:
    """Tokenize ``source``; raises
    :class:`~repro.errors.QuerySyntaxError` on unrecognized input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    col = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise QuerySyntaxError(
                f"unexpected character {source[pos]!r}", line, col
            )
        text = m.group(0)
        kind = m.lastgroup
        if kind not in ("ws", "comment"):
            if kind == "name" and text in KEYWORDS:
                tokens.append(Token("keyword", text, line, col))
            elif kind == "string":
                tokens.append(Token("string", _unquote(text), line, col))
            elif kind == "number":
                tokens.append(Token("number", text, line, col))
            elif kind == "var":
                tokens.append(Token("var", text[1:], line, col))
            elif kind == "name":
                tokens.append(Token("name", text, line, col))
            else:
                # Operators and punctuation are all plain symbols; the
                # parser dispatches on the value (":=", "//", "::", "<" …).
                tokens.append(Token("symbol", text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = m.end()
    tokens.append(Token("eof", "", line, col))
    return tokens


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")
