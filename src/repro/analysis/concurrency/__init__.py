"""Whole-program concurrency analysis shared by the lock-order,
shared-state-race, blocking-under-lock, and (generalized)
lock-discipline rules.

The heavy lifting lives in :mod:`repro.analysis.concurrency.lockgraph`:
one interprocedural walk over the project produces lock identities,
acquisition-order edges with witness trails, thread-entry roots, the
multi-root-reachable class set, blocking-call records, and per-method
entry-held lock sets.  The result is cached per
:class:`~repro.analysis.core.Project`, so running all four rules costs
one walk.
"""

from repro.analysis.concurrency.config import CONCURRENT_MODULE_PREFIXES
from repro.analysis.concurrency.lockgraph import (
    BlockingCall,
    LockGraph,
    lock_graph,
)

__all__ = [
    "CONCURRENT_MODULE_PREFIXES",
    "BlockingCall",
    "LockGraph",
    "lock_graph",
]
