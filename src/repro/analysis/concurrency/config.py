"""Shared configuration for the concurrency rules.

One tuple answers "which modules run under more than one thread?" for
every concurrency rule — ``lock-discipline``, ``lock-order``,
``shared-state-race``, and ``blocking-under-lock`` — so widening the
concurrent surface (say, when the sharded scatter-gather executor
lands) is a one-line change here instead of four drifting copies.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["CONCURRENT_MODULE_PREFIXES", "is_concurrent_module"]

#: Posix-relpath prefixes of modules that execute under multiple
#: threads: the cache hierarchy shared by the batch executor's pool
#: (``repro/perf``), the threaded query server with its admission
#: controller and pooled client (``repro/server``), and the metrics /
#: tracing / HTTP-scrape observability stack (``repro/obs``).
CONCURRENT_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro/perf/",
    "repro/server/",
    "repro/obs/",
)


def is_concurrent_module(relpath: str) -> bool:
    """Is ``relpath`` (posix, relative to the lint root) in scope for
    the concurrency rules?"""
    return relpath.startswith(CONCURRENT_MODULE_PREFIXES)
