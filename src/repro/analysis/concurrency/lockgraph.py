"""The whole-program lock graph: one interprocedural walk feeding
every concurrency rule.

The walk starts from *roots* — public entry points in the concurrent
modules plus thread-entry points (``threading.Thread(target=...)``,
``executor.submit(f)``, ``do_*`` HTTP handler methods) — and follows
resolvable calls (``self.m()``, typed-attribute methods, same-module
and imported project functions, class instantiation) while tracking
the set of held locks.  Along the way it records:

- **lock identities**: every ``self.<attr> = threading.Lock() /
  RLock() / Condition()`` assignment becomes the stable identity
  ``ClassName.attr`` (class hierarchy resolved, so subclasses share
  the defining class's identity);
- **acquisition-order edges**: entering ``with <lock B>:`` while
  holding lock A adds edge ``A → B`` with the full witness trail
  (acquisition sites and call steps from the root);
- **self-deadlocks**: re-acquiring a held non-reentrant ``Lock`` on
  the *same receiver expression* is an immediate deadlock;
- **blocking calls**: curated blocking operations (``time.sleep``,
  socket recv/send, ``Condition.wait`` on a *different* lock,
  blocking ``Queue.get/put``, ``Thread.join``, file I/O) executed
  while any lock is held;
- **entry-held sets**: for private methods, the locks provably held
  at *every* project-internal call site — the "helper always called
  under the lock" exemption ``lock-discipline`` needs;
- **shared classes**: classes reachable from ≥ 2 distinct roots (a
  thread root plus the main thread, or two thread roots) — the race
  detector's candidate set.

Known limitations of the static approximation (documented in
``docs/static-analysis.md``): locks acquired inside
``@contextmanager`` helpers are invisible to callers, closures and
nested functions are not walked, and receivers are typed by a simple
flow-insensitive assignment scan.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, List, Optional, Set, Tuple,
)

from repro.analysis.concurrency.config import is_concurrent_module
from repro.analysis.core import ClassInfo, ModuleInfo, Project

__all__ = [
    "Edge", "SelfDeadlock", "BlockingCall", "LockGraph", "lock_graph",
    "find_cycles",
]

#: Bound on call-chain depth; deeper chains are truncated silently.
_MAX_DEPTH = 12

#: threading factory name -> lock kind.
_LOCK_KINDS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

#: Constructor simple name -> synthetic type marker.
_CTOR_TYPES = {
    "Lock": "Lock", "RLock": "RLock", "Condition": "Condition",
    "Event": "Event", "Semaphore": "Semaphore",
    "BoundedSemaphore": "Semaphore", "Barrier": "Barrier",
    "Thread": "Thread", "Timer": "Thread",
    "Queue": "Queue", "SimpleQueue": "Queue", "LifoQueue": "Queue",
    "PriorityQueue": "Queue",
    "socket": "socket", "create_connection": "socket",
    "ThreadPoolExecutor": "Executor",
}

#: Types whose in-place mutations are internally synchronized.
SYNC_TYPES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "Barrier",
    "Queue",
})

#: Attribute calls that block regardless of receiver type.
_SOCKET_ALWAYS = frozenset({"recv", "recv_into", "sendall", "accept"})
#: Attribute calls that block only on a socket-typed receiver.
_SOCKET_TYPED = frozenset({"send", "connect", "makefile"})
#: File-object calls that block on a file-typed receiver.
_FILE_CALLS = frozenset({"read", "readline", "readlines", "write",
                         "flush"})
#: Queue calls with blocking semantics (unless ``block=False``).
_QUEUE_CALLS = frozenset({"get", "put"})


@dataclass(frozen=True)
class Edge:
    """Acquisition-order edge: ``dst`` acquired while ``src`` held."""

    src: str
    dst: str
    path: str
    line: int
    witness: Tuple[str, ...]


@dataclass(frozen=True)
class SelfDeadlock:
    """A non-reentrant lock re-acquired on the same receiver."""

    identity: str
    path: str
    line: int
    witness: Tuple[str, ...]


@dataclass(frozen=True)
class BlockingCall:
    """A blocking operation executed while holding ≥ 1 lock."""

    desc: str
    held: Tuple[str, ...]
    path: str
    line: int
    witness: Tuple[str, ...]


@dataclass
class LockGraph:
    """Everything the interprocedural walk learned about the tree."""

    #: lock identity -> kind ("lock" | "rlock" | "condition")
    locks: Dict[str, str] = field(default_factory=dict)
    #: defining class name -> {attr -> identity}
    lock_attrs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: (src, dst) -> first Edge observed
    edges: Dict[Tuple[str, str], Edge] = field(default_factory=dict)
    self_deadlocks: List[SelfDeadlock] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    #: (class name, method name) -> locks held at every call site
    entry_held: Dict[Tuple[str, str], FrozenSet[str]] = field(
        default_factory=dict)
    #: class name -> sorted root names reaching it (shared classes only)
    shared: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: class name -> {attr -> type marker} for concurrent-module classes
    attr_types: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def class_lock_attrs(self, project: Project,
                         cls_info: ClassInfo) -> Dict[str, str]:
        """``{attr -> identity}`` of ``cls_info`` including locks
        inherited from project-resolvable ancestors."""
        out: Dict[str, str] = {}
        for ci in [cls_info, *project.ancestors_of(cls_info)]:
            for attr, ident in self.lock_attrs.get(ci.name, {}).items():
                out.setdefault(attr, ident)
        return out

    def owns_lock(self, project: Project, cls_info: ClassInfo) -> bool:
        return bool(self.class_lock_attrs(project, cls_info))


def _last_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _ann_name(ann: Optional[ast.expr]) -> Optional[str]:
    """Simple type name of an annotation (``Foo``, ``mod.Foo``,
    ``"Foo"`` string annotations, ``Optional[Foo]``)."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.strip().strip("'\"")
        text = text.split("[", 1)[0]
        return text.split(".")[-1] or None
    if isinstance(ann, (ast.Name, ast.Attribute)):
        return _last_name(ann)
    if isinstance(ann, ast.Subscript):
        head = _last_name(ann.value)
        if head == "Optional":
            inner = ann.slice
            return _ann_name(inner if isinstance(inner, ast.expr)
                             else None)
    return None


def _unparse(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


class _Builder:
    """Builds one :class:`LockGraph` for one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = LockGraph()
        #: relpath -> {name -> top-level FunctionDef}
        self._mod_funcs: Dict[str, Dict[str, ast.FunctionDef]] = {}
        #: relpath -> {local name -> (dotted module, original name)}
        self._imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
        #: class-def node id -> ClassInfo
        self._info_by_node: Dict[int, ClassInfo] = {}
        #: (class, method) -> held-identity sets seen at call sites
        self._callsites: Dict[Tuple[str, str],
                              List[FrozenSet[str]]] = {}
        #: method keys that are thread/handler roots (never exempt)
        self._root_methods: Set[Tuple[str, str]] = set()
        #: class name -> root names that reach it
        self._reached: Dict[str, Set[str]] = {}
        self._memo: Set[Tuple[str, int, FrozenSet[str]]] = set()

    # -- indexes ---------------------------------------------------------

    def _index(self) -> None:
        for module in self.project.modules:
            funcs: Dict[str, ast.FunctionDef] = {}
            imports: Dict[str, Tuple[str, str]] = {}
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef):
                    funcs[node.name] = node
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        imports[local] = (node.module, alias.name)
            self._mod_funcs[module.relpath] = funcs
            self._imports[module.relpath] = imports
        for infos in self.project.classes.values():
            for info in infos:
                self._info_by_node[id(info.node)] = info

    def _collect_locks(self) -> None:
        for module in self.project.modules:
            for cls in ast.walk(module.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                for node in ast.walk(cls):
                    attr_kind = _self_attr_lock_assign(node)
                    if attr_kind is None:
                        continue
                    attr, kind = attr_kind
                    ident = f"{cls.name}.{attr}"
                    self.graph.locks[ident] = kind
                    self.graph.lock_attrs.setdefault(
                        cls.name, {})[attr] = ident

    def _collect_attr_types(self) -> None:
        for module in self.project.modules:
            if not is_concurrent_module(module.relpath):
                continue
            for cls in ast.walk(module.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                types = self.graph.attr_types.setdefault(cls.name, {})
                for node in ast.walk(cls):
                    for attr, marker in _attr_type_facts(
                            node, self.project):
                        types.setdefault(attr, marker)

    # -- roots -----------------------------------------------------------

    def _roots(self) -> List[Tuple[str, ast.FunctionDef, ModuleInfo,
                                   Optional[ClassInfo]]]:
        roots: List[Tuple[str, ast.FunctionDef, ModuleInfo,
                          Optional[ClassInfo]]] = []
        for module in self.project.modules:
            if not is_concurrent_module(module.relpath):
                continue
            for node in module.tree.body:
                if (isinstance(node, ast.FunctionDef)
                        and not node.name.startswith("_")):
                    roots.append(("<main>", node, module, None))
                if not isinstance(node, ast.ClassDef):
                    continue
                info = self._info_by_node.get(id(node))
                if info is None:
                    continue
                handler = any(
                    base.endswith("RequestHandler")
                    for base in info.base_names
                )
                for item in node.body:
                    if not isinstance(item, ast.FunctionDef):
                        continue
                    if not item.name.startswith("_"):
                        roots.append(("<main>", item, module, info))
                    if handler and item.name.startswith("do_"):
                        name = f"handler:{node.name}.{item.name}"
                        roots.append((name, item, module, info))
                        self._root_methods.add((node.name, item.name))
            roots.extend(self._thread_roots(module))
        return roots

    def _thread_roots(
        self, module: ModuleInfo,
    ) -> List[Tuple[str, ast.FunctionDef, ModuleInfo,
                    Optional[ClassInfo]]]:
        out: List[Tuple[str, ast.FunctionDef, ModuleInfo,
                        Optional[ClassInfo]]] = []
        for cls_node, call in _thread_entry_calls(module):
            target = _entry_target(call)
            if target is None:
                continue
            resolved = self._resolve_target(target, module, cls_node)
            if resolved is None:
                continue
            fn, fn_module, fn_cls = resolved
            qual = (f"{fn_cls.name}.{fn.name}" if fn_cls else fn.name)
            kind = ("submit" if isinstance(call.func, ast.Attribute)
                    and call.func.attr == "submit" else "thread")
            out.append((f"{kind}:{qual}", fn, fn_module, fn_cls))
            if fn_cls is not None:
                self._root_methods.add((fn_cls.name, fn.name))
        return out

    def _resolve_target(
        self, target: ast.expr, module: ModuleInfo,
        cls_node: Optional[ast.ClassDef],
    ) -> Optional[Tuple[ast.FunctionDef, ModuleInfo,
                        Optional[ClassInfo]]]:
        """A ``target=`` / ``submit`` first-arg expression, resolved."""
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self" and cls_node is not None):
            info = self._info_by_node.get(id(cls_node))
            if info is None:
                return None
            found = self._find_method(info, target.attr)
            if found is None:
                return None
            fn, fn_module, _owner = found
            return fn, fn_module, info
        if isinstance(target, ast.Name):
            return self._resolve_name(target.id, module)
        return None

    def _resolve_name(
        self, name: str, module: ModuleInfo,
    ) -> Optional[Tuple[ast.FunctionDef, ModuleInfo,
                        Optional[ClassInfo]]]:
        fn = self._mod_funcs[module.relpath].get(name)
        if fn is not None:
            return fn, module, None
        imported = self._imports[module.relpath].get(name)
        if imported is None:
            return None
        dotted, orig = imported
        relpath = dotted.replace(".", "/") + ".py"
        target_mod = self.project.module_by_relpath(relpath)
        if target_mod is None:
            return None
        fn = self._mod_funcs.get(target_mod.relpath, {}).get(orig)
        if fn is None:
            return None
        return fn, target_mod, None

    def _find_method(
        self, info: ClassInfo, name: str,
    ) -> Optional[Tuple[ast.FunctionDef, ModuleInfo, ClassInfo]]:
        for ci in [info, *self.project.ancestors_of(info)]:
            for item in ci.node.body:
                if (isinstance(item, ast.FunctionDef)
                        and item.name == name):
                    return item, ci.module, ci
        return None

    # -- the walk --------------------------------------------------------

    def build(self) -> LockGraph:
        self._index()
        self._collect_locks()
        self._collect_attr_types()
        for root, fn, module, cls in self._roots():
            self._walk_function(fn, module, cls, root, (), (), 0)
        self._finish_entry_held()
        self._finish_shared()
        return self.graph

    def _walk_function(
        self, fn: ast.FunctionDef, module: ModuleInfo,
        cls: Optional[ClassInfo], root: str,
        held: Tuple[Tuple[str, str], ...],
        trail: Tuple[str, ...], depth: int,
    ) -> None:
        if depth > _MAX_DEPTH:
            return
        # The root is part of the key: per-root reachability is what
        # the shared-class detector consumes, so a function memoized
        # under one root must still be walked under another.
        key = (root, id(fn), frozenset(i for i, _ in held))
        if key in self._memo:
            return
        self._memo.add(key)
        if cls is not None and is_concurrent_module(module.relpath):
            self._reached.setdefault(cls.name, set()).add(root)
        env = _local_env(fn, self.graph.attr_types.get(
            cls.name if cls else "", {}))
        for stmt in fn.body:
            self._visit(stmt, fn, module, cls, root, env, held,
                        trail, depth)

    def _visit(
        self, node: ast.AST, fn: ast.FunctionDef, module: ModuleInfo,
        cls: Optional[ClassInfo], root: str, env: Dict[str, str],
        held: Tuple[Tuple[str, str], ...],
        trail: Tuple[str, ...], depth: int,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return  # nested scopes are not walked (documented)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            new_trail = trail
            for item in node.items:
                self._visit(item.context_expr, fn, module, cls, root,
                            env, new_held, new_trail, depth)
                resolved = self._resolve_lock(item.context_expr, cls,
                                              env)
                if resolved is None:
                    continue
                ident, kind, token = resolved
                qual = (f"{cls.name}.{fn.name}" if cls else fn.name)
                step = (f"{module.relpath}:{item.context_expr.lineno}: "
                        f"{qual} acquires {ident} "
                        f"(`with {token}:`)")
                reentrant = any(
                    h_id == ident and h_tok == token
                    for h_id, h_tok in new_held
                )
                if reentrant:
                    if kind == "lock":
                        self.graph.self_deadlocks.append(SelfDeadlock(
                            identity=ident,
                            path=module.relpath,
                            line=item.context_expr.lineno,
                            witness=new_trail + (step,),
                        ))
                    continue  # rlock/condition: reentrant, no edge
                for h_id, _h_tok in new_held:
                    edge_key = (h_id, ident)
                    if edge_key not in self.graph.edges:
                        self.graph.edges[edge_key] = Edge(
                            src=h_id, dst=ident,
                            path=module.relpath,
                            line=item.context_expr.lineno,
                            witness=new_trail + (step,),
                        )
                new_held = new_held + ((ident, token),)
                new_trail = new_trail + (step,)
            for stmt in node.body:
                self._visit(stmt, fn, module, cls, root, env,
                            new_held, new_trail, depth)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, fn, module, cls, root, env, held,
                              trail, depth)
        for child in ast.iter_child_nodes(node):
            self._visit(child, fn, module, cls, root, env, held,
                        trail, depth)

    def _handle_call(
        self, call: ast.Call, fn: ast.FunctionDef, module: ModuleInfo,
        cls: Optional[ClassInfo], root: str, env: Dict[str, str],
        held: Tuple[Tuple[str, str], ...],
        trail: Tuple[str, ...], depth: int,
    ) -> None:
        qual = (f"{cls.name}.{fn.name}" if cls else fn.name)
        step = (f"{module.relpath}:{call.lineno}: "
                f"{qual} calls {_unparse(call.func)}()")
        held_ids = frozenset(i for i, _ in held)
        func = call.func
        # self.m(...) — method on the current class hierarchy
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and cls is not None):
            found = self._find_method(cls, func.attr)
            if found is not None:
                target_fn, target_mod, owner = found
                self._callsites.setdefault(
                    (owner.name, func.attr), []).append(held_ids)
                self._walk_function(target_fn, target_mod, cls, root,
                                    held, trail + (step,), depth + 1)
                return
        # <typed receiver>.m(...) — method on a project class
        if isinstance(func, ast.Attribute):
            recv_type = self._expr_type(func.value, cls, env)
            if recv_type is not None:
                infos = self.project.classes.get(recv_type, ())
                for info in infos:
                    found = self._find_method(info, func.attr)
                    if found is None:
                        continue
                    target_fn, target_mod, owner = found
                    self._callsites.setdefault(
                        (owner.name, func.attr), []).append(held_ids)
                    self._walk_function(target_fn, target_mod, info,
                                        root, held, trail + (step,),
                                        depth + 1)
                    return
        # f(...) / Cls(...) — module function or instantiation
        if isinstance(func, ast.Name):
            resolved = self._resolve_name(func.id, module)
            if resolved is not None:
                target_fn, target_mod, _none = resolved
                self._walk_function(target_fn, target_mod, None, root,
                                    held, trail + (step,), depth + 1)
                return
            infos = self.project.classes.get(func.id, ())
            for info in infos:
                if is_concurrent_module(info.module.relpath):
                    self._reached.setdefault(
                        info.name, set()).add(root)
                found = self._find_method(info, "__init__")
                if found is not None:
                    target_fn, target_mod, _owner = found
                    self._walk_function(target_fn, target_mod, info,
                                        root, held, trail + (step,),
                                        depth + 1)
                return
        # unresolved — blocking matchers apply if any lock is held
        if held:
            desc = self._blocking_reason(call, cls, env, held)
            if desc is not None:
                self.graph.blocking.append(BlockingCall(
                    desc=desc,
                    held=tuple(i for i, _ in held),
                    path=module.relpath,
                    line=call.lineno,
                    witness=trail + (
                        f"{module.relpath}:{call.lineno}: "
                        f"{qual} blocks in {desc}",),
                ))

    # -- typing / matching ----------------------------------------------

    def _expr_type(self, expr: ast.expr, cls: Optional[ClassInfo],
                   env: Dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self" and cls is not None):
                return self.graph.attr_types.get(
                    cls.name, {}).get(expr.attr)
            inner = self._expr_type(expr.value, cls, env)
            if inner is not None:
                return self.graph.attr_types.get(
                    inner, {}).get(expr.attr)
        if isinstance(expr, ast.Call):
            return _call_type(expr, self.project)
        return None

    def _resolve_lock(
        self, expr: ast.expr, cls: Optional[ClassInfo],
        env: Dict[str, str],
    ) -> Optional[Tuple[str, str, str]]:
        """``with <expr>:`` resolved to (identity, kind, token)."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner_name: Optional[str] = None
        if (isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and cls is not None):
            attrs = self.graph.class_lock_attrs(self.project, cls)
            ident = attrs.get(expr.attr)
            if ident is not None:
                return ident, self.graph.locks[ident], _unparse(expr)
            return None
        owner_name = self._expr_type(expr.value, cls, env)
        if owner_name is None:
            return None
        ident = self.graph.lock_attrs.get(
            owner_name, {}).get(expr.attr)
        if ident is None:
            return None
        return ident, self.graph.locks[ident], _unparse(expr)

    def _blocking_reason(
        self, call: ast.Call, cls: Optional[ClassInfo],
        env: Dict[str, str],
        held: Tuple[Tuple[str, str], ...],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "time.sleep()"
            if func.id == "open":
                return "open()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        recv = func.value
        if (attr == "sleep" and isinstance(recv, ast.Name)
                and recv.id == "time"):
            return "time.sleep()"
        if isinstance(recv, ast.Constant):
            return None  # ", ".join(...) and friends
        recv_type = self._expr_type(recv, cls, env)
        if attr in ("wait", "wait_for"):
            lock = self._resolve_lock(recv, cls, env)
            if lock is not None:
                ident = lock[0]
                others = [i for i, _ in held if i != ident]
                if others:
                    return (f"{ident}.wait() while still holding "
                            f"{', '.join(sorted(set(others)))}")
                return None  # waiting on the only held lock releases it
            if recv_type == "Event":
                return "Event.wait()"
            return None
        if attr in _SOCKET_ALWAYS:
            return f"socket .{attr}()"
        if attr in _SOCKET_TYPED and recv_type == "socket":
            return f"socket .{attr}()"
        if attr == "join" and recv_type == "Thread":
            return "Thread.join()"
        if attr in _QUEUE_CALLS and recv_type == "Queue":
            for kw in call.keywords:
                if (kw.arg == "block"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False):
                    return None
            return f"Queue.{attr}()"
        if attr in _FILE_CALLS and recv_type == "file":
            return f"file .{attr}()"
        return None

    # -- finalization ----------------------------------------------------

    def _finish_entry_held(self) -> None:
        for (cls_name, method), sets in self._callsites.items():
            if not method.startswith("_") or method.startswith("__"):
                continue  # public / dunder: callable from anywhere
            if (cls_name, method) in self._root_methods:
                continue  # thread entry: starts with nothing held
            common: FrozenSet[str] = frozenset.intersection(*sets)
            if common:
                self.graph.entry_held[(cls_name, method)] = common

    def _finish_shared(self) -> None:
        for cls_name, roots in self._reached.items():
            thread_roots = {r for r in roots if r != "<main>"}
            if not thread_roots:
                continue
            if len(thread_roots) >= 2 or "<main>" in roots:
                self.graph.shared[cls_name] = tuple(sorted(roots))


def _self_attr_lock_assign(
    node: ast.AST,
) -> Optional[Tuple[str, str]]:
    """``self.<attr> = threading.Lock()`` (or RLock / Condition) →
    (attr, kind)."""
    if isinstance(node, ast.Assign):
        targets = node.targets
        value: Optional[ast.expr] = node.value
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
        value = node.value
    else:
        return None
    if not isinstance(value, ast.Call):
        return None
    ctor = _last_name(value.func)
    kind = _LOCK_KINDS.get(ctor or "")
    if kind is None:
        return None
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr, kind
    return None


def _attr_type_facts(
    node: ast.AST, project: Project,
) -> List[Tuple[str, str]]:
    """Type markers a statement reveals about ``self.<attr>``."""
    out: List[Tuple[str, str]] = []
    if isinstance(node, ast.AnnAssign):
        marker = _ann_name(node.annotation)
        target = node.target
        attr: Optional[str] = None
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            attr = target.attr
        elif isinstance(target, ast.Name):
            attr = target.id  # class-level annotation (e.g. dataclass)
        if attr and marker:
            out.append((attr, _normalize_type(marker, project)))
        if attr and node.value is not None:
            value_type = _call_type_opt(node.value, project)
            if value_type:
                out.append((attr, value_type))
    elif isinstance(node, ast.Assign):
        value_type = _call_type_opt(node.value, project)
        if value_type:
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    out.append((target.attr, value_type))
    return out


def _normalize_type(name: str, project: Project) -> str:
    if name in _CTOR_TYPES:
        return _CTOR_TYPES[name]
    if name in ("IO", "TextIO", "BinaryIO"):
        return "file"
    return name


def _call_type_opt(expr: ast.expr,
                   project: Project) -> Optional[str]:
    if isinstance(expr, ast.Call):
        return _call_type(expr, project)
    return None


def _call_type(call: ast.Call, project: Project) -> Optional[str]:
    name = _last_name(call.func)
    if name is None:
        return None
    if name == "open":
        return "file"
    if name in _CTOR_TYPES:
        return _CTOR_TYPES[name]
    if name in project.classes:
        return name
    return None


def _local_env(fn: ast.FunctionDef,
               attr_types: Dict[str, str]) -> Dict[str, str]:
    """Flow-insensitive ``{local name -> type marker}`` for one
    function body (annotated params + constructor assignments +
    ``x = self.<typed attr>``)."""
    env: Dict[str, str] = {}
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs)
    for arg in args:
        marker = _ann_name(arg.annotation)
        if marker:
            env[arg.arg] = marker
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        if len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Call):
            name = _last_name(node.value.func)
            if name == "open":
                env.setdefault(target.id, "file")
            elif name in _CTOR_TYPES:
                env.setdefault(target.id, _CTOR_TYPES[name])
            elif name is not None:
                env.setdefault(target.id, name)
        elif (isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"):
            marker = attr_types.get(node.value.attr)
            if marker:
                env.setdefault(target.id, marker)
    return env


def _thread_entry_calls(
    module: ModuleInfo,
) -> List[Tuple[Optional[ast.ClassDef], ast.Call]]:
    """Every ``Thread(...)`` / ``.submit(...)`` call in the module,
    paired with its enclosing class (if any)."""
    out: List[Tuple[Optional[ast.ClassDef], ast.Call]] = []

    def scan(tree: ast.AST, cls: Optional[ast.ClassDef]) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _last_name(node.func)
            if name in ("Thread", "Timer") and any(
                    kw.arg == "target" for kw in node.keywords):
                out.append((cls, node))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit" and node.args):
                out.append((cls, node))

    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            scan(node, node)
        else:
            scan(node, None)
    return out


def _entry_target(call: ast.Call) -> Optional[ast.expr]:
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"):
        return call.args[0] if call.args else None
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    return None


def lock_graph(project: Project) -> LockGraph:
    """The (cached) lock graph of ``project`` — one walk, shared by
    every concurrency rule in the run."""
    cached = getattr(project, "_concurrency_lock_graph", None)
    if isinstance(cached, LockGraph):
        return cached
    graph = _Builder(project).build()
    setattr(project, "_concurrency_lock_graph", graph)
    return graph


def find_cycles(
    edges: Dict[Tuple[str, str], Edge],
) -> List[List[Edge]]:
    """Every elementary cycle in the acquisition graph, deduplicated
    by canonical rotation (smallest node first)."""
    adj: Dict[str, List[str]] = {}
    for src, dst in edges:
        adj.setdefault(src, []).append(dst)
    for dsts in adj.values():
        dsts.sort()
    seen: Set[Tuple[str, ...]] = set()
    cycles: List[List[Edge]] = []

    def dfs(start: str, node: str, path: List[str],
            on_path: Set[str]) -> None:
        for nxt in adj.get(node, ()):  # noqa: B007
            if nxt == start:
                cyc = path[:]
                pivot = cyc.index(min(cyc))
                canon = tuple(cyc[pivot:] + cyc[:pivot])
                if canon not in seen:
                    seen.add(canon)
                    ring = list(canon) + [canon[0]]
                    cycles.append([
                        edges[(ring[i], ring[i + 1])]
                        for i in range(len(canon))
                    ])
            elif nxt not in on_path and nxt > start:
                # only expand nodes ordered after the start node so
                # each cycle is discovered from its smallest node once
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for node in sorted(adj):
        dfs(node, node, [node], {node})
    return cycles
