"""Core types of the engine invariant linter.

The linter is a custom static-analysis pass over the repo's own Python
AST.  It exists because PRs 1–3 introduced contracts that runtime code
can only enforce *after* the bug ships — the operator state machine,
guard ticks in hot loops, the metric catalog, named fault points, lock
discipline in the thread-safe caches.  Each contract gets an AST rule
(:mod:`repro.analysis.rules`) so drift is caught on every PR, the same
role race detectors and sanitizer wiring play in serving stacks.

Vocabulary:

- :class:`ModuleInfo` — one parsed source file: path, AST, and the
  per-line ``# tix-lint: disable=RULE`` suppressions extracted from its
  comment tokens;
- :class:`Project` — every module under one source root, plus a
  project-wide class index (name → definitions) so rules can resolve
  inheritance across files;
- :class:`Rule` — a named check producing :class:`Finding`\\ s; concrete
  rules register themselves with :func:`register`;
- :class:`Finding` — one diagnostic, anchored to ``path:line:col``.

Suppression syntax: ``# tix-lint: disable=rule-a,rule-b`` (or
``disable=all``) silences matching findings on the comment's own line;
a *standalone* comment line additionally silences the line below it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict, FrozenSet, Iterator, List, Optional, Tuple, Type,
)

__all__ = [
    "Severity", "Finding", "ModuleInfo", "ClassInfo", "Project",
    "Rule", "register", "rule_classes", "get_rules",
]

#: Severities, weakest first; ``--fail-on`` compares by this order.
_SEVERITY_ORDER = ("warning", "error")


class Severity:
    """An ordered severity level (``warning`` < ``error``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if name not in _SEVERITY_ORDER:
            raise ValueError(f"unknown severity {name!r}")
        self.name = name

    @property
    def rank(self) -> int:
        return _SEVERITY_ORDER.index(self.name)

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Severity) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Severity({self.name!r})"


WARNING = Severity("warning")
ERROR = Severity("error")


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``witness`` is the step-by-step evidence trail for findings whose
    conclusion spans several program points (a lock-order cycle, a
    blocking call reached through a call chain).  Single-site rules
    leave it empty.
    """

    rule: str
    severity: str          # "warning" | "error"
    path: str              # posix path relative to the lint root
    line: int
    col: int
    message: str
    witness: Tuple[str, ...] = ()

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "witness": list(self.witness),
        }

    def render(self) -> str:
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.severity}] {self.rule}: {self.message}"
        )
        if not self.witness:
            return head
        steps = "\n".join(f"    {i + 1}. {step}"
                          for i, step in enumerate(self.witness))
        return f"{head}\n{steps}"


_SUPPRESS_RE = re.compile(
    r"#\s*tix-lint:\s*disable=([A-Za-z0-9_.,\-\s]+)"
)


def _extract_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """``{line: {rule names}}`` from ``# tix-lint: disable=...`` comments.

    Uses the tokenizer (not a regex over raw lines) so directives inside
    string literals never count.  A standalone comment line suppresses
    itself and the following line; a trailing comment suppresses its own
    line only.
    """
    out: Dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = frozenset(
                part.strip() for part in m.group(1).split(",")
                if part.strip()
            )
            line = tok.start[0]
            standalone = tok.line[:tok.start[1]].strip() == ""
            out.setdefault(line, set()).update(rules)
            if standalone:
                out.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - defensive
        pass
    return {line: frozenset(rules) for line, rules in out.items()}


class ModuleInfo:
    """One parsed source file under the lint root."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.suppressions = _extract_suppressions(source)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = path.relative_to(root).as_posix()
        return cls(path, relpath, source, tree)

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule in rules or "all" in rules

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (lazily built for the module)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)


@dataclass
class ClassInfo:
    """One class definition plus resolved structural facts."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    base_names: List[str]
    method_names: FrozenSet[str] = field(default_factory=frozenset)


def _base_name(expr: ast.expr) -> Optional[str]:
    """Simple name of a base-class expression (``Operator`` or
    ``base.Operator``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class Project:
    """Every module under one source root, plus cross-file indexes."""

    def __init__(self, root: Path, modules: List[ModuleInfo],
                 docs_dir: Optional[Path] = None) -> None:
        self.root = root
        self.modules = modules
        self.docs_dir = docs_dir
        #: simple class name -> every definition of that name
        self.classes: Dict[str, List[ClassInfo]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = [
                    b for b in map(_base_name, node.bases) if b is not None
                ]
                methods = frozenset(
                    item.name for item in node.body
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                )
                info = ClassInfo(node.name, module, node, bases, methods)
                self.classes.setdefault(node.name, []).append(info)

    def module_by_relpath(self, relpath: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None

    def subclasses_of(self, root_name: str) -> List[ClassInfo]:
        """Every class transitively derived (by simple base name) from
        ``root_name`` — the root class itself excluded."""
        known = {root_name}
        out: List[ClassInfo] = []
        changed = True
        while changed:
            changed = False
            for name, infos in self.classes.items():
                if name in known:
                    continue
                # Only definitions that actually derive from a known
                # name qualify — an unrelated class that merely shares
                # its simple name with a subclass must not be dragged in.
                matching = [
                    info for info in infos
                    if any(base in known for base in info.base_names)
                ]
                if matching:
                    known.add(name)
                    out.extend(matching)
                    changed = True
        return out

    def ancestors_of(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """Transitive base classes of ``info`` resolved by simple name
        (cycles guarded)."""
        seen = set()
        queue = list(info.base_names)
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            for base in self.classes.get(name, ()):
                yield base
                queue.extend(base.base_names)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` / :attr:`severity` / :attr:`description`
    and implement :meth:`check`, yielding findings over the whole
    project (cross-module rules need the global view; single-module
    rules just loop ``project.modules``).
    """

    name: str = ""
    severity: Severity = ERROR
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------

    def finding(self, module: ModuleInfo, node: Optional[ast.AST],
                message: str,
                severity: Optional[Severity] = None,
                witness: Tuple[str, ...] = ()) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.name,
            severity=(severity or self.severity).name,
            path=module.relpath,
            line=line,
            col=col + 1,
            message=message,
            witness=witness,
        )

    def file_finding(self, path: str, line: int, message: str,
                     severity: Optional[Severity] = None) -> Finding:
        """A finding against a non-module file (e.g. a docs page)."""
        return Finding(
            rule=self.name,
            severity=(severity or self.severity).name,
            path=path,
            line=line,
            col=1,
            message=message,
        )


#: name -> rule class, populated by :func:`register`.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def rule_classes() -> Dict[str, Type[Rule]]:
    """The registry (name -> class), import-side-effect populated."""
    from repro.analysis import rules as _rules  # noqa: F401  (registers)

    return dict(_REGISTRY)


def get_rules(names: Optional[List[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all registered rules by
    default).  Unknown names raise ``ValueError``."""
    registry = rule_classes()
    if names is None:
        selected = sorted(registry)
    else:
        unknown = [n for n in names if n not in registry]
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(registry))}"
            )
        selected = list(dict.fromkeys(names))
    return [registry[n]() for n in selected]
