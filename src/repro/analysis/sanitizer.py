"""Runtime lock sanitizer: the dynamic twin of the static
concurrency pass.

Opt in with ``TIX_LOCK_SANITIZER=1`` (or :func:`install`):
``threading.Lock`` and ``threading.RLock`` are replaced by
instrumented wrappers (``threading.Condition()`` picks the patched
``RLock`` up automatically), and every acquisition is recorded
against a per-thread held stack.  The sanitizer then

- maintains the *observed* acquisition-order graph and flags
  inversions — acquiring B after A in one thread and A after B in
  another is the ABBA deadlock the static ``lock-order`` rule proves
  impossible only for the chains it can see;
- accepts the statically computed order via
  :meth:`LockSanitizer.feed_static_order`, so a runtime acquisition
  contradicting the lock graph is a violation even the first time it
  happens;
- detects *actual* cyclic waits: a blocking acquire polls with a
  short timeout, and when the waits-for graph (thread → wanted lock
  → owner thread → ...) closes a cycle the sanitizer raises
  :class:`DeadlockError` in one participant instead of hanging the
  suite forever;
- publishes ``sanitizer.*`` metrics through the observability
  catalog: acquisitions, order violations, deadlocks, and the number
  of live instrumented locks.

Lock identities are allocation sites (``qualname:line`` of the code
that called ``Lock()``), which is the runtime spelling of the static
``ClassName.attr`` identity.  Wrappers outlive :func:`uninstall` —
they keep delegating to their real inner lock, just without
recording.  The wrappers deliberately implement the private
``_is_owned`` / ``_release_save`` / ``_acquire_restore`` protocol so
``threading.Condition`` keeps working on a sanitized RLock.
"""

from __future__ import annotations

import os
import sys
import threading
import weakref
from dataclasses import dataclass
from time import monotonic
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro import obs as _obs

__all__ = [
    "ENV_VAR", "DeadlockError", "Violation", "LockSanitizer",
    "install", "uninstall", "active", "install_from_env",
]

ENV_VAR = "TIX_LOCK_SANITIZER"

#: Real primitives captured at import, before any patching.
_RealLock = threading.Lock
_RealRLock = threading.RLock

#: Poll interval for blocking acquires (also the deadlock-detection
#: latency bound).
_POLL_S = 0.05


class DeadlockError(RuntimeError):
    """Raised in one participant of a detected cyclic wait."""


@dataclass(frozen=True)
class Violation:
    """One recorded ordering violation."""

    kind: str        # "order" | "static-order"
    lock: str        # identity being acquired
    held: Tuple[str, ...]
    thread: str


def _allocation_site(skip: int) -> str:
    """``qualname:line`` of the frame ``skip`` levels up."""
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stack
        return "<unknown>"
    code = frame.f_code
    qual = getattr(code, "co_qualname", code.co_name)
    return f"{qual}:{frame.f_lineno}"


class _SanitizedLock:
    """Instrumented wrapper over a real non-reentrant lock."""

    _reentrant = False

    def __init__(self, san: "LockSanitizer", name: str) -> None:
        self._san = san
        self._inner: Any = _RealLock()
        self._name = name
        self._owner_tid: Optional[int] = None
        self._count = 0

    # -- lock protocol ---------------------------------------------------

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        return self._san._tracked_acquire(self, blocking, timeout)

    def release(self) -> None:
        self._san._tracked_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:
        # The stdlib registers this as an os.fork handler
        # (concurrent.futures.thread does at import time).
        self._inner._at_fork_reinit()
        self._owner_tid = None
        self._count = 0

    def __repr__(self) -> str:
        return f"<SanitizedLock {self._name}>"

    # -- raw operations the sanitizer drives -----------------------------

    def _raw_acquire(self, blocking: bool, timeout: float) -> bool:
        if not blocking:
            return self._inner.acquire(False)
        if timeout < 0:
            return self._inner.acquire(True)
        return self._inner.acquire(True, timeout)


class _SanitizedRLock(_SanitizedLock):
    """Instrumented wrapper over a real reentrant lock.

    Implements the private protocol ``threading.Condition`` relies
    on, so ``Condition()`` built on a patched ``RLock()`` works.
    """

    _reentrant = True

    def __init__(self, san: "LockSanitizer", name: str) -> None:
        super().__init__(san, name)
        self._inner = _RealRLock()

    def locked(self) -> bool:
        return self._inner._is_owned()  # type: ignore[attr-defined]

    def _is_owned(self) -> bool:
        return self._inner._is_owned()  # type: ignore[attr-defined]

    def _release_save(self) -> object:
        self._san._note_full_release(self)
        return self._inner._release_save()  # type: ignore[attr-defined]

    def _acquire_restore(self, state: object) -> None:
        self._inner._acquire_restore(state)  # type: ignore[attr-defined]
        self._san._note_reacquire(self)

    def __repr__(self) -> str:
        return f"<SanitizedRLock {self._name}>"


class LockSanitizer:
    """Records per-thread acquisition stacks and checks lock order.

    One instance is installed globally via :func:`install`; tests may
    also drive an instance directly through the ``_Sanitized*``
    wrappers it hands out from :meth:`make_lock` / :meth:`make_rlock`.
    """

    def __init__(self, poll_s: float = _POLL_S) -> None:
        self.poll_s = poll_s
        self._state = _RealLock()
        self._tls = threading.local()
        #: observed + fed order edges: name -> names acquired after it
        self._order: Dict[str, Set[str]] = {}
        #: edges that came from the static lock graph
        self._static: Set[Tuple[str, str]] = set()
        #: thread id -> lock it is currently blocked on
        self._waiting: Dict[int, _SanitizedLock] = {}
        self._violations: List[Violation] = []
        self.acquisitions = 0
        self.deadlocks = 0
        self._locks: "weakref.WeakSet[_SanitizedLock]" = (
            weakref.WeakSet())
        self._enabled = True
        #: metric deltas awaiting a safe flush point (see
        #: :meth:`_maybe_flush`): [acquisitions, violations,
        #: deadlocks, locks-tracked gauge (-1 = unchanged)]
        self._pending = [0, 0, 0, -1.0]

    # -- factories -------------------------------------------------------

    def make_lock(self, name: Optional[str] = None) -> _SanitizedLock:
        lock = _SanitizedLock(self, name or _allocation_site(2))
        self._register(lock)
        return lock

    def make_rlock(self,
                   name: Optional[str] = None) -> _SanitizedRLock:
        lock = _SanitizedRLock(self, name or _allocation_site(2))
        self._register(lock)
        return lock

    def _register(self, lock: _SanitizedLock) -> None:
        with self._state:
            self._locks.add(lock)
            self._pending[3] = float(len(self._locks))
        self._maybe_flush()

    # -- introspection ---------------------------------------------------

    def violations(self) -> List[Violation]:
        with self._state:
            return list(self._violations)

    def held_names(self) -> List[str]:
        return [lock._name for lock in self._held_stack()]

    def order_edges(self) -> Set[Tuple[str, str]]:
        with self._state:
            return {
                (src, dst)
                for src, dsts in self._order.items() for dst in dsts
            }

    def feed_static_order(
        self, edges: Iterable[Tuple[str, str]],
    ) -> None:
        """Seed the order graph with statically proven edges (from
        :func:`repro.analysis.concurrency.lockgraph.lock_graph`), so
        the first runtime inversion is already a violation."""
        with self._state:
            for src, dst in edges:
                self._order.setdefault(src, set()).add(dst)
                self._static.add((src, dst))

    # -- per-thread state ------------------------------------------------

    def _held_stack(self) -> List[_SanitizedLock]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _busy(self) -> bool:
        return bool(getattr(self._tls, "busy", False))

    # -- the tracked operations ------------------------------------------

    def _tracked_acquire(self, lock: _SanitizedLock, blocking: bool,
                         timeout: float) -> bool:
        if self._busy() or not self._enabled:
            return lock._raw_acquire(blocking, timeout)
        tid = threading.get_ident()
        if lock._reentrant and lock._owner_tid == tid:
            got = lock._raw_acquire(blocking, timeout)
            if got:
                lock._count += 1
            return got
        self._check_order(lock)
        if not blocking or timeout >= 0:
            got = lock._raw_acquire(blocking, timeout)
        else:
            got = self._acquire_with_deadlock_watch(lock, tid)
        if got:
            self._note_acquired(lock, tid)
        return got

    def _acquire_with_deadlock_watch(self, lock: _SanitizedLock,
                                     tid: int) -> bool:
        if lock._raw_acquire(True, self.poll_s):
            return True
        with self._state:
            self._waiting[tid] = lock
        try:
            while True:
                if self._wait_cycle(tid):
                    self._record_deadlock(lock)
                    raise DeadlockError(
                        f"cyclic wait detected while acquiring "
                        f"{lock._name} (held: "
                        f"{', '.join(self.held_names()) or 'none'})"
                    )
                if lock._raw_acquire(True, self.poll_s):
                    return True
        finally:
            with self._state:
                self._waiting.pop(tid, None)

    def _wait_cycle(self, start_tid: int) -> bool:
        """Does the waits-for graph close a cycle through
        ``start_tid``?  (thread → wanted lock → owner thread → ...)"""
        with self._state:
            tid = start_tid
            for _ in range(64):  # bound: cycles are short
                wanted = self._waiting.get(tid)
                if wanted is None:
                    return False
                owner = wanted._owner_tid
                if owner is None:
                    return False
                if owner == start_tid:
                    return True
                tid = owner
        return False  # pragma: no cover - defensive bound

    def _check_order(self, lock: _SanitizedLock) -> None:
        held = self._held_stack()
        if not held:
            return
        name = lock._name
        with self._state:
            bad = [
                h._name for h in held
                if h._name != name
                and self._reachable(name, h._name)
            ]
            if bad:
                kind = (
                    "static-order"
                    if any((name, b) in self._static for b in bad)
                    else "order"
                )
                self._violations.append(Violation(
                    kind=kind,
                    lock=name,
                    held=tuple(h._name for h in held),
                    thread=threading.current_thread().name,
                ))
                self._pending[1] += 1
            for h in held:
                if h._name != name:
                    self._order.setdefault(h._name, set()).add(name)

    def _reachable(self, src: str, dst: str) -> bool:
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            for nxt in self._order.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _note_acquired(self, lock: _SanitizedLock, tid: int) -> None:
        lock._owner_tid = tid
        lock._count = 1
        self._held_stack().append(lock)
        with self._state:
            self.acquisitions += 1
            self._pending[0] += 1

    def _tracked_release(self, lock: _SanitizedLock) -> None:
        if self._busy() or not self._enabled:
            lock._inner.release()
            return
        tid = threading.get_ident()
        if lock._reentrant and lock._owner_tid == tid:
            lock._count -= 1
            if lock._count > 0:
                lock._inner.release()
                return
        lock._owner_tid = None
        lock._count = 0
        stack = self._held_stack()
        if lock in stack:
            stack.remove(lock)
        lock._inner.release()
        if not stack:
            self._maybe_flush()

    def _note_full_release(self, lock: _SanitizedLock) -> None:
        """Condition.wait is about to drop the lock entirely."""
        lock._owner_tid = None
        lock._count = 0
        stack = self._held_stack()
        if lock in stack:
            stack.remove(lock)

    def _note_reacquire(self, lock: _SanitizedLock) -> None:
        """Condition.wait got the lock back."""
        lock._owner_tid = threading.get_ident()
        lock._count = 1
        self._held_stack().append(lock)

    def _record_deadlock(self, lock: _SanitizedLock) -> None:
        with self._state:
            self.deadlocks += 1
            self._pending[2] += 1

    # -- metric emission -------------------------------------------------
    #
    # The recorder is NEVER called from inside an acquisition: the
    # metrics registry guards itself with an (instrumented) lock, so
    # emitting "sanitizer.acquisitions" while holding the registry's
    # own just-acquired lock would re-enter it — a self-deadlock the
    # sanitizer exists to catch.  Counts accumulate in ``_pending``
    # and flush only at safe points: when the calling thread holds no
    # sanitized locks.  The busy flag keeps the flush's own registry
    # acquisitions untracked.

    def _maybe_flush(self) -> None:
        if self._busy() or self._held_stack():
            return
        rec = _obs.RECORDER
        with self._state:
            acq, vio, dead, gauge = self._pending
            self._pending = [0, 0, 0, -1.0]
        if not rec.enabled:
            return  # deltas are dropped, not queued forever
        self._tls.busy = True
        try:
            if acq:
                rec.count("sanitizer.acquisitions", acq)
            if vio:
                rec.count("sanitizer.order_violations", vio)
            if dead:
                rec.count("sanitizer.deadlocks", dead)
            if gauge >= 0:
                rec.set_gauge("sanitizer.locks_tracked", gauge)
        finally:
            self._tls.busy = False


#: The installed sanitizer, if any.
_ACTIVE: Optional[LockSanitizer] = None


def _registering_lock() -> _SanitizedLock:
    san = _ACTIVE
    if san is None:  # pragma: no cover - uninstall race
        return _RealLock()  # type: ignore[return-value]
    lock = _SanitizedLock(san, _allocation_site(2))
    san._register(lock)
    return lock


def _registering_rlock() -> _SanitizedRLock:
    san = _ACTIVE
    if san is None:  # pragma: no cover - uninstall race
        return _RealRLock()  # type: ignore[return-value]
    lock = _SanitizedRLock(san, _allocation_site(2))
    san._register(lock)
    return lock


def install(san: Optional[LockSanitizer] = None) -> LockSanitizer:
    """Patch ``threading.Lock`` / ``threading.RLock`` (idempotent).

    Locks created *before* installation stay uninstrumented — install
    early (the CLI does it before building any engine object when
    ``TIX_LOCK_SANITIZER=1``)."""
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    _ACTIVE = san or LockSanitizer()
    setattr(threading, "Lock", _registering_lock)
    setattr(threading, "RLock", _registering_rlock)
    return _ACTIVE


def uninstall() -> None:
    """Restore the real primitives.  Existing wrappers keep working
    (they delegate to their inner real locks) but stop recording."""
    global _ACTIVE
    if _ACTIVE is None:
        return
    _ACTIVE._enabled = False
    _ACTIVE = None
    setattr(threading, "Lock", _RealLock)
    setattr(threading, "RLock", _RealRLock)


def active() -> Optional[LockSanitizer]:
    return _ACTIVE


def install_from_env() -> Optional[LockSanitizer]:
    """Install iff ``TIX_LOCK_SANITIZER=1`` in the environment."""
    if os.environ.get(ENV_VAR, "") == "1":
        return install()
    return None
