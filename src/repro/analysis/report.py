"""Reporters for lint results: human-readable text and JSON.

The JSON shape is versioned and asserted by
``tests/unit/test_lint_cli.py`` — CI consumers may rely on it::

    {
      "version": 1,
      "root": "/abs/path/to/src",
      "files_checked": 93,
      "rules_run": ["fault-point-drift", ...],
      "findings": [{"rule", "severity", "path", "line", "col",
                    "message"}, ...],
      "suppressed": [...same shape...],
      "summary": {"error": 0, "warning": 0, "suppressed": 0}
    }
"""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.runner import LintResult

__all__ = ["render_human", "render_json", "JSON_VERSION"]

JSON_VERSION = 1


def render_human(result: LintResult, verbose: bool = False) -> str:
    lines = [f.render() for f in result.findings]
    if verbose and result.suppressed:
        lines.append("suppressed:")
        lines.extend("  " + f.render() for f in result.suppressed)
    s = result.summary()
    lines.append(
        f"tix lint: {result.files_checked} files, "
        f"{len(result.rules_run)} rules, "
        f"{s['error']} error(s), {s['warning']} warning(s), "
        f"{s['suppressed']} suppressed"
    )
    return "\n".join(lines)


def to_dict(result: LintResult) -> Dict[str, object]:
    return {
        "version": JSON_VERSION,
        "root": result.root,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "summary": result.summary(),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_dict(result), indent=2, sort_keys=True)
