"""Reporters for lint results: human-readable text and JSON.

The JSON shape is versioned and asserted by
``tests/unit/test_lint_cli.py`` — CI consumers may rely on it::

    {
      "version": 2,
      "root": "/abs/path/to/src",
      "files_checked": 93,
      "rules_run": ["fault-point-drift", ...],
      "findings": [{"rule", "severity", "path", "line", "col",
                    "message", "witness"}, ...],
      "suppressed": [...same shape...],
      "summary": {"error": 0, "warning": 0, "suppressed": 0}
    }

Version history:

- **1** — initial shape; findings carry
  ``rule``/``severity``/``path``/``line``/``col``/``message``.
- **2** — findings gain ``witness``, the concurrency rules'
  step-by-step evidence trail (empty list for single-site rules).

:func:`findings_from_payload` reads both versions (the audit-log
v1/v2 precedent): a missing ``witness`` field defaults to empty, so a
consumer upgraded to v2 still digests archived v1 reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.analysis.core import Finding
from repro.analysis.runner import LintResult

__all__ = [
    "render_human", "render_json", "findings_from_payload",
    "JSON_VERSION",
]

JSON_VERSION = 2

#: Versions :func:`findings_from_payload` understands.
READABLE_VERSIONS = (1, 2)


def render_human(result: LintResult, verbose: bool = False) -> str:
    lines = [f.render() for f in result.findings]
    if verbose and result.suppressed:
        lines.append("suppressed:")
        lines.extend("  " + f.render() for f in result.suppressed)
    s = result.summary()
    lines.append(
        f"tix lint: {result.files_checked} files, "
        f"{len(result.rules_run)} rules, "
        f"{s['error']} error(s), {s['warning']} warning(s), "
        f"{s['suppressed']} suppressed"
    )
    return "\n".join(lines)


def to_dict(result: LintResult) -> Dict[str, object]:
    return {
        "version": JSON_VERSION,
        "root": result.root,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "summary": result.summary(),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_dict(result), indent=2, sort_keys=True)


def findings_from_payload(
    payload: Mapping[str, Any],
) -> List[Finding]:
    """Reconstruct the active findings from a parsed JSON report.

    Accepts every version in :data:`READABLE_VERSIONS`; v1 findings
    (no ``witness`` field) come back with an empty witness tuple.
    Unknown future versions raise ``ValueError`` rather than silently
    dropping fields the caller might depend on.
    """
    version = payload.get("version")
    if version not in READABLE_VERSIONS:
        raise ValueError(
            f"unsupported lint report version {version!r}; "
            f"readable: {READABLE_VERSIONS}"
        )
    out: List[Finding] = []
    for raw in payload.get("findings", []):
        out.append(Finding(
            rule=raw["rule"],
            severity=raw["severity"],
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            message=raw["message"],
            witness=tuple(raw.get("witness", ())),
        ))
    return out
