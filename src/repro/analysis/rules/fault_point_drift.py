"""Rule ``fault-point-drift``: fault-point names match the declared
registry.

The chaos suite addresses injection sites by *string name*
(``FaultSpec(point="persist.read_doc")``).  Rename the string at the
``fire()`` site and every chaos scenario targeting it silently stops
injecting — tests keep passing because nothing fails, which is exactly
the wrong signal.  :data:`repro.resilience.faultinject.FAULT_POINTS` is
the declared registry; this rule pins the code to it, both ways:

- every point name that reaches ``INJECTOR.fire(...)`` — as a string
  literal at the call, or as a literal passed to a wrapper function
  with a ``point`` parameter (``_read_file(path, "persist.read_doc")``)
  — must be a registry key;
- every registry key must be fired by at least one such site (a stale
  entry advertises an injection point the chaos suite can no longer
  reach).

Like the metric catalog, the registry is read with
``ast.literal_eval`` from the tree being linted, not imported.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

_REGISTRY_RELPATH = "repro/resilience/faultinject.py"
_PARAM = "point"

#: (module, node, point-name) of a resolved fire site.
_Site = Tuple[ModuleInfo, ast.Call, str]


def _load_registry(module: ModuleInfo) -> Optional[Dict[str, str]]:
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "FAULT_POINTS"
            and value is not None
        ):
            try:
                parsed = ast.literal_eval(value)
            except ValueError:
                return None
            if isinstance(parsed, dict):
                return parsed
    return None


def _entry_line(module: ModuleInfo, name: str) -> int:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and node.value == name:
            return node.lineno
    return 1


def _point_arg(call: ast.Call, index: int) -> Optional[ast.expr]:
    """The expression bound to the ``point`` parameter at ``index``."""
    for kw in call.keywords:
        if kw.arg == _PARAM:
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


def _wrapper_index(fn: ast.FunctionDef) -> Optional[int]:
    """Positional index of a ``point`` parameter, skipping ``self``."""
    names = [a.arg for a in fn.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    if _PARAM in names:
        return names.index(_PARAM)
    return None


@register
class FaultPointDriftRule(Rule):
    name = "fault-point-drift"
    description = (
        "fault-point names at INJECTOR.fire() sites (and wrapper call "
        "sites) must match the FAULT_POINTS registry in "
        "repro/resilience/faultinject.py, and every registered point "
        "must be reachable"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registry_module = project.module_by_relpath(_REGISTRY_RELPATH)
        if registry_module is None:
            yield self.file_finding(
                _REGISTRY_RELPATH, 1,
                "fault-point registry module not found in the tree",
            )
            return
        registry = _load_registry(registry_module)
        if registry is None:
            yield self.finding(
                registry_module, None,
                "FAULT_POINTS is missing or not a literal dict; the "
                "chaos suite has no declared point registry",
            )
            return

        # Wrapper functions taking a `point` parameter, by simple name.
        # `fire` itself qualifies, which is correct: bare-name calls to
        # it would be checked the same way as the attribute form below.
        wrappers: Dict[str, int] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.FunctionDef):
                    index = _wrapper_index(node)
                    if index is not None:
                        wrappers[node.name] = index

        sites: List[_Site] = []
        for module in project.modules:
            if module.relpath == _REGISTRY_RELPATH:
                continue  # the injector's own machinery, not a site
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                expr: Optional[ast.expr] = None
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fire"
                ):
                    expr = _point_arg(node, 0)
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in wrappers
                ):
                    expr = _point_arg(node, wrappers[node.func.id])
                if expr is None:
                    continue
                if isinstance(expr, ast.Constant) and isinstance(
                    expr.value, str
                ):
                    sites.append((module, node, expr.value))
                # A non-literal expression is a pass-through (e.g. the
                # wrapper forwarding its own `point` parameter) — the
                # literal is checked where it enters the call chain.

        fired: Set[str] = set()
        for module, node, point in sites:
            if point in registry:
                fired.add(point)
            else:
                yield self.finding(
                    module, node,
                    f"fault point {point!r} is not declared in "
                    f"FAULT_POINTS — chaos scenarios cannot target it "
                    f"by contract; add it to the registry",
                )

        for point in sorted(set(registry) - fired):
            yield self.finding(
                registry_module,
                _line_anchor(registry_module, point),
                f"registered fault point {point!r} is never fired by "
                f"any code path — remove the stale entry or restore "
                f"the injection site",
            )


class _line_anchor:
    """Line/col anchor for registry-entry findings."""

    def __init__(self, module: ModuleInfo, name: str) -> None:
        self.lineno = _entry_line(module, name)
        self.col_offset = 0
