"""Rule ``guard-hook``: hot access-method loops must tick the guard.

The resilience layer's deadlines and cancellation are *cooperative*: a
query is only as responsive as its tightest loop's willingness to call
``guard.tick()``.  The engine's ``Operator.next()`` ticks once per row,
but the access methods (TermJoin, PhraseFinder, Pick, the structural
joins, the composite baselines) run data-dependent merge loops *inside*
one ``next()``/``run()`` call — a loop over a million postings that
never ticks turns a 100 ms deadline into an unbounded stall.

The rule formalizes the PR 2 convention:

- **scope**: every entry point in ``repro/access/*.py`` and
  ``repro/joins/structural.py`` — public module-level functions, plus
  methods named ``run`` / ``occurrences`` / ``picked_nodes`` (the
  access-method driver protocol);
- **obligation**: if the entry point's body contains a ``for``/``while``
  loop, the body must call ``guard.tick(...)`` somewhere, **or** call a
  project function that itself ticks (delegation — e.g.
  ``PhraseFinder.run`` drives ``occurrences``, which ticks).

Genuinely bounded loops can opt out with
``# tix-lint: disable=guard-hook`` on the ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

#: Files whose entry points are governed.
_TARGET_PREFIX = "repro/access/"
_TARGET_FILES = ("repro/joins/structural.py",)

#: Method names treated as access-method entry points.
_ENTRY_METHODS = ("run", "occurrences", "picked_nodes")


def _is_target(module: ModuleInfo) -> bool:
    return (
        module.relpath.startswith(_TARGET_PREFIX)
        or module.relpath in _TARGET_FILES
    )


def _has_loop(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.While)):
            return True
    return False


def _has_tick(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "tick"
        ):
            return True
    return False


def _called_names(fn: ast.FunctionDef) -> Set[str]:
    """Simple names of everything the function calls (``f(...)`` →
    ``f``; ``self.m(...)`` / ``obj.m(...)`` → ``m``)."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            out.add(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            out.add(node.func.attr)
    return out


@register
class GuardHookRule(Rule):
    name = "guard-hook"
    description = (
        "data-dependent loops in access methods and structural joins "
        "must call guard.tick() (directly or via a ticking helper) so "
        "deadlines and cancellation stay responsive"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        # Pre-pass: names of project functions (in the governed files)
        # that tick — delegation targets.
        ticking: Set[str] = set()
        for module in project.modules:
            if not _is_target(module):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.FunctionDef) and _has_tick(node):
                    ticking.add(node.name)

        for module in project.modules:
            if not _is_target(module):
                continue
            yield from self._check_module(module, ticking)

    def _check_module(self, module: ModuleInfo,
                      ticking: Set[str]) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                if not node.name.startswith("_"):
                    yield from self._check_fn(module, node, ticking)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name in _ENTRY_METHODS
                    ):
                        yield from self._check_fn(module, item, ticking)

    def _check_fn(self, module: ModuleInfo, fn: ast.FunctionDef,
                  ticking: Set[str]) -> Iterator[Finding]:
        if not _has_loop(fn):
            return
        if _has_tick(fn):
            return
        if _called_names(fn) & ticking:
            return  # delegates to a ticking helper
        yield self.finding(
            module, fn,
            f"{fn.name}() runs data-dependent loops without a guard "
            f"tick; hoist `guard = _resguard.GUARD` and call "
            f"guard.tick() in the hot loop (see docs/robustness.md)",
        )
