"""Rule ``lock-order``: the whole-program lock acquisition graph must
be acyclic.

Two threads acquiring the same pair of locks in opposite orders is
the classic ABBA deadlock — and like every race, no test catches it
deterministically.  The rule builds the project lock graph
(:mod:`repro.analysis.concurrency.lockgraph`): every
``threading.Lock/RLock/Condition`` attribute becomes a stable
identity ``ClassName.attr``, the interprocedural walk extracts nested
acquisition chains, and each edge ``A → B`` means "somewhere, B is
acquired while A is held".  A cycle in that graph is reported with
the full witness path — one acquisition trail per edge — so the fix
is readable straight off the finding.

Re-acquiring a held *non-reentrant* ``Lock`` on the same receiver
(``with self._lock: ... self._helper()`` where the helper takes
``self._lock`` again) is an unconditional self-deadlock and reported
by the same rule.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.concurrency.lockgraph import (
    Edge,
    find_cycles,
    lock_graph,
)
from repro.analysis.core import Finding, Project, Rule, register


class _Anchor:
    """Minimal lineno/col carrier for :meth:`Rule.finding`."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


@register
class LockOrderRule(Rule):
    name = "lock-order"
    description = (
        "the whole-program lock acquisition graph must be acyclic, "
        "and non-reentrant locks must never be re-acquired"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = lock_graph(project)
        for dead in graph.self_deadlocks:
            module = project.module_by_relpath(dead.path)
            if module is None:  # pragma: no cover - defensive
                continue
            yield self.finding(
                module, _Anchor(dead.line),
                f"re-acquisition of non-reentrant {dead.identity} on "
                f"the same instance — the thread deadlocks against "
                f"itself (use RLock or hoist the lock to the caller)",
                witness=dead.witness,
            )
        for cycle in find_cycles(graph.edges):
            yield from self._cycle_finding(project, cycle)

    def _cycle_finding(self, project: Project,
                       cycle: List[Edge]) -> Iterator[Finding]:
        first = cycle[0]
        module = project.module_by_relpath(first.path)
        if module is None:  # pragma: no cover - defensive
            return
        ring = " -> ".join([e.src for e in cycle] + [cycle[0].src])
        witness: List[str] = []
        for edge in cycle:
            witness.append(f"edge {edge.src} -> {edge.dst}:")
            witness.extend(f"  {step}" for step in edge.witness)
        yield self.finding(
            module, _Anchor(first.line),
            f"lock-order cycle {ring} — threads interleaving these "
            f"acquisition chains can deadlock; impose one global "
            f"order or collapse the locks",
            witness=tuple(witness),
        )
