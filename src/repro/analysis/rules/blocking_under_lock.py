"""Rule ``blocking-under-lock``: no blocking operation while holding
a lock.

A lock held across a blocking call turns one slow peer into a
stalled process: every thread that needs the lock queues behind a
socket read, a ``time.sleep``, or an unbounded ``Queue.get``.  The
interprocedural walk (:mod:`repro.analysis.concurrency.lockgraph`)
records each blocking operation executed inside a held-lock region —
including operations reached *through* calls, so hiding the sleep in
a helper does not hide the finding.  The curated matcher set:

- ``time.sleep`` (and a bare imported ``sleep``);
- socket ``recv`` / ``recv_into`` / ``sendall`` / ``accept`` (always)
  and ``send`` / ``connect`` / ``makefile`` on socket-typed receivers;
- ``Condition.wait`` / ``wait_for`` while holding *another* lock
  (waiting on the only held condition releases it and is fine), and
  ``Event.wait``;
- ``Queue.get`` / ``Queue.put`` without ``block=False``;
- ``Thread.join``;
- ``open()`` and file-object ``read``/``write``/``flush``.

Warning severity: some of these are deliberate (an event sink
serializing writes *under* its lock), and
``# tix-lint: disable=blocking-under-lock`` on the call line is the
auditable way to say so.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from repro.analysis.concurrency.lockgraph import lock_graph
from repro.analysis.core import (
    WARNING,
    Finding,
    Project,
    Rule,
    register,
)


class _Anchor:
    """Minimal lineno/col carrier for :meth:`Rule.finding`."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


@register
class BlockingUnderLockRule(Rule):
    name = "blocking-under-lock"
    severity = WARNING
    description = (
        "no blocking call (sleep, socket I/O, Condition.wait, "
        "blocking Queue ops, file I/O) inside a held-lock region"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = lock_graph(project)
        seen: Set[Tuple[str, int, str, Tuple[str, ...]]] = set()
        for call in graph.blocking:
            key = (call.path, call.line, call.desc, call.held)
            if key in seen:
                continue  # same site reached through several paths
            seen.add(key)
            module = project.module_by_relpath(call.path)
            if module is None:  # pragma: no cover - defensive
                continue
            held = ", ".join(sorted(set(call.held)))
            yield self.finding(
                module, _Anchor(call.line),
                f"blocking {call.desc} while holding {held} — every "
                f"thread needing the lock stalls behind this call; "
                f"move it outside the critical section",
                witness=call.witness,
            )
