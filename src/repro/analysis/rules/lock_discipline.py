"""Rule ``lock-discipline``: shared state of lock-owning classes is
only mutated under the lock.

Classes in the concurrent modules
(:data:`~repro.analysis.concurrency.config.CONCURRENT_MODULE_PREFIXES`
— the cache hierarchy, the query server, the observability stack)
follow one convention: a class that owns a lock attribute
(``self._lock = threading.Lock()``, an ``RLock``, or a ``Condition``
under any attribute name) mutates its shared attributes **only**
inside ``with self.<lock>:``.  A write that drifts outside the block
is a data race that no test will catch deterministically — exactly
the class of bug a static pass earns its keep on.

Mechanics: for every lock-owning class (lock attributes resolved
through the class hierarchy), every method's

- assignment / augmented-assignment to ``self.<attr>`` or
  ``self.<attr>[...]``, and
- mutator call on a ``self.<attr>`` container (``pop``, ``clear``,
  ``move_to_end``, ...)

must have a ``with self.<lock>:`` ancestor naming *any* of the
class's locks.  Exemptions: ``__init__`` (the object is not yet
published); mutator calls on internally synchronized attributes
(``Event.set``, ``Queue.put`` — their own locks suffice); and
private helpers the lock graph proves are called *only* while the
lock is already held.  Reads are not checked — the codebase
deliberately reads lifetime tallies without the lock — and methods
may opt out with ``# tix-lint: disable=lock-discipline`` where
single-threaded use is guaranteed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.concurrency.config import is_concurrent_module
from repro.analysis.concurrency.lockgraph import (
    SYNC_TYPES,
    LockGraph,
    lock_graph,
)
from repro.analysis.core import (
    ClassInfo,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register,
)

#: Container methods that mutate in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "move_to_end", "add", "discard",
})


def _is_self_attr(expr: ast.expr, attr: Optional[str] = None) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and (attr is None or expr.attr == attr)
    )


def _under_lock(module: ModuleInfo, node: ast.AST,
                stop: ast.FunctionDef,
                lock_attrs: Dict[str, str]) -> bool:
    """Is ``node`` inside ``with self.<any class lock>:`` within
    ``stop``?"""
    cur: Optional[ast.AST] = node
    while cur is not None and cur is not stop:
        if isinstance(cur, ast.With):
            for item in cur.items:
                expr = item.context_expr
                if (isinstance(expr, ast.Attribute)
                        and _is_self_attr(expr)
                        and expr.attr in lock_attrs):
                    return True
        cur = module.parent_of(cur)
    return False


def _shared_write(node: ast.AST,
                  lock_attrs: Dict[str, str]) -> Optional[str]:
    """If ``node`` mutates ``self.<attr>`` state, the attribute name."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if _is_self_attr(target):
                if target.attr in lock_attrs:
                    continue  # installing the lock itself
                return target.attr
            if isinstance(target, ast.Subscript) and _is_self_attr(
                target.value
            ):
                return target.value.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
        and _is_self_attr(node.func.value)
    ):
        return node.func.value.attr
    return None


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "in the concurrent modules, classes owning a lock must "
        "mutate shared attributes only inside `with self.<lock>:` "
        "blocks"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = lock_graph(project)
        for module in project.modules:
            if not is_concurrent_module(module.relpath):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                infos = [
                    info for info in project.classes.get(node.name, ())
                    if info.node is node
                ]
                if not infos:
                    continue
                info = infos[0]
                lock_attrs = graph.class_lock_attrs(project, info)
                if not lock_attrs:
                    continue
                yield from self._check_class(module, info, lock_attrs,
                                             graph)

    def _check_class(self, module: ModuleInfo, info: ClassInfo,
                     lock_attrs: Dict[str, str],
                     graph: LockGraph) -> Iterator[Finding]:
        for item in info.node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "__init__":
                continue  # not yet shared with other threads
            if graph.entry_held.get((info.name, item.name)):
                continue  # provably called only under the lock
            yield from self._check_method(module, info, item,
                                          lock_attrs, graph)

    def _check_method(self, module: ModuleInfo, info: ClassInfo,
                      fn: ast.FunctionDef, lock_attrs: Dict[str, str],
                      graph: LockGraph) -> Iterator[Finding]:
        attr_types = graph.attr_types.get(info.name, {})
        locks = ", ".join(f"self.{a}" for a in sorted(lock_attrs))
        for node in ast.walk(fn):
            attr = _shared_write(node, lock_attrs)
            if attr is None:
                continue
            if (isinstance(node, ast.Call)
                    and attr_types.get(attr) in SYNC_TYPES):
                continue  # Event.set() etc. synchronize internally
            if _under_lock(module, node, fn, lock_attrs):
                continue
            yield self.finding(
                module, node,
                f"{info.name}.{fn.name} mutates self.{attr} outside "
                f"`with {locks}:` — a data race across the threads "
                f"sharing this object",
            )
