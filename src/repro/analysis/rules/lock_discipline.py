"""Rule ``lock-discipline``: shared state of lock-holding perf classes
is only mutated under the lock.

The cache hierarchy (:mod:`repro.perf`) is the one part of the engine
shared across the batch executor's worker threads.  Its classes follow
one convention: a class that owns ``self._lock = threading.Lock()``
mutates its shared attributes **only** inside ``with self._lock:``.
A write that drifts outside the block is a data race that no test will
catch deterministically — exactly the class of bug a static pass earns
its keep on.

Mechanics: within ``repro/perf/*.py``, for every class whose ``__init__``
assigns ``self._lock`` from ``threading.Lock()`` / ``RLock()``, every
*other* method's

- assignment / augmented-assignment to ``self.<attr>`` or
  ``self.<attr>[...]``, and
- mutator call on a ``self.<attr>`` container (``pop``, ``clear``,
  ``move_to_end``, ...)

must have a ``with self._lock:`` ancestor.  ``__init__`` itself is
exempt (the object is not yet published).  Reads are not checked — the
codebase deliberately reads lifetime tallies without the lock — and
methods may opt out with ``# tix-lint: disable=lock-discipline`` where
single-threaded use is guaranteed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

_TARGET_PREFIX = "repro/perf/"

#: Container methods that mutate in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "move_to_end", "add", "discard",
})

_LOCK_FACTORIES = ("Lock", "RLock")


def _is_self_attr(expr: ast.expr, attr: Optional[str] = None) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and (attr is None or expr.attr == attr)
    )


def _assigns_lock(cls: ast.ClassDef) -> bool:
    """Does any method do ``self._lock = threading.Lock()`` (or RLock)?"""
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not any(_is_self_attr(t, "_lock") for t in node.targets):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _LOCK_FACTORIES
        ):
            return True
    return False


def _under_lock(module: ModuleInfo, node: ast.AST,
                stop: ast.FunctionDef) -> bool:
    """Is ``node`` inside a ``with self._lock:`` block within ``stop``?"""
    cur: Optional[ast.AST] = node
    while cur is not None and cur is not stop:
        if isinstance(cur, ast.With):
            for item in cur.items:
                if _is_self_attr(item.context_expr, "_lock"):
                    return True
        cur = module.parent_of(cur)
    return False


def _shared_write(node: ast.AST) -> Optional[str]:
    """If ``node`` mutates ``self.<attr>`` state, the attribute name."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if _is_self_attr(target):
                if target.attr == "_lock":
                    continue  # installing the lock itself
                return target.attr
            if isinstance(target, ast.Subscript) and _is_self_attr(
                target.value
            ):
                return target.value.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
        and _is_self_attr(node.func.value)
    ):
        return node.func.value.attr
    return None


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "in repro/perf, classes owning self._lock must mutate shared "
        "attributes only inside `with self._lock:` blocks"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not module.relpath.startswith(_TARGET_PREFIX):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _assigns_lock(node):
                    yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "__init__":
                continue  # not yet shared with other threads
            yield from self._check_method(module, cls, item)

    def _check_method(self, module: ModuleInfo, cls: ast.ClassDef,
                      fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            attr = _shared_write(node)
            if attr is None:
                continue
            if _under_lock(module, node, fn):
                continue
            yield self.finding(
                module, node,
                f"{cls.name}.{fn.name} mutates self.{attr} outside "
                f"`with self._lock:` — a data race under the batch "
                f"executor's thread pool",
            )
