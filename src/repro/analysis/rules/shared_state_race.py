"""Rule ``shared-state-race``: classes reachable from multiple
threads must not write bare instance attributes without a lock.

``lock-discipline`` covers classes that *own* a lock; this rule
covers the classes that escaped to another thread without ever
growing one.  The lock graph identifies thread-entry roots
(``threading.Thread(target=...)``, ``executor.submit(f)``, ``do_*``
HTTP handler methods) and walks calls from each; a class whose
methods run under ≥ 2 distinct roots (two thread roots, or a thread
root plus the public API the main thread calls) is *shared*.  A
shared, lock-less class writing ``self.<attr>`` outside ``__init__``
is a data race: both the write itself and the read-modify-write
idioms around it (``self.hits += 1``) are unsynchronized.

Exemptions: classes owning any lock attribute (lock-discipline's
domain), ``threading.local`` subclasses (per-thread by construction),
attributes whose type is an internally synchronized primitive
(``Event``, ``Queue``, ``Semaphore``), and writes under a ``with``
on a *resolvable* lock (e.g. a lock borrowed from another object).
A ``# tix-lint: disable=shared-state-race`` on the ``class`` line
exempts the whole class — the documented escape hatch for objects
that are handed off between threads but never written concurrently.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.concurrency.config import is_concurrent_module
from repro.analysis.concurrency.lockgraph import (
    SYNC_TYPES,
    LockGraph,
    lock_graph,
)
from repro.analysis.core import (
    ClassInfo,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register,
)
from repro.analysis.rules.lock_discipline import (
    _MUTATORS,
    _is_self_attr,
)


@register
class SharedStateRaceRule(Rule):
    name = "shared-state-race"
    description = (
        "lock-less classes reachable from multiple threads must not "
        "write instance attributes outside __init__"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = lock_graph(project)
        for cls_name, roots in sorted(graph.shared.items()):
            for info in project.classes.get(cls_name, ()):
                if not is_concurrent_module(info.module.relpath):
                    continue
                if graph.owns_lock(project, info):
                    continue  # lock-discipline's domain
                if self._is_thread_local(project, info):
                    continue
                if info.module.suppressed(self.name,
                                          info.node.lineno):
                    continue  # class-level opt-out
                yield from self._check_class(project, graph, info,
                                             roots)

    def _is_thread_local(self, project: Project,
                         info: ClassInfo) -> bool:
        if "local" in info.base_names:
            return True
        return any("local" in anc.base_names
                   for anc in project.ancestors_of(info))

    def _check_class(self, project: Project, graph: LockGraph,
                     info: ClassInfo,
                     roots: "tuple[str, ...]") -> Iterator[Finding]:
        attr_types = graph.attr_types.get(info.name, {})
        for item in info.node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "__init__":
                continue  # not yet published to other threads
            for node in ast.walk(item):
                attr = _written_attr(node)
                if attr is None:
                    continue
                if attr_types.get(attr) in SYNC_TYPES:
                    continue  # Event/Queue/... synchronize internally
                if _under_any_lock(graph, info.module, node, item):
                    continue
                yield self.finding(
                    info.module, node,
                    f"{info.name}.{item.name} writes self.{attr} "
                    f"without a lock, but {info.name} runs under "
                    f"{len(roots)} thread roots "
                    f"({', '.join(roots)}) — add a lock or confine "
                    f"the object to one thread",
                    witness=tuple(f"reachable from root {r}"
                                  for r in roots),
                )


def _written_attr(node: ast.AST) -> Optional[str]:
    """Attribute name if ``node`` writes ``self.<attr>`` state."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if _is_self_attr(target):
                return target.attr
            if (isinstance(target, ast.Subscript)
                    and _is_self_attr(target.value)):
                return target.value.attr
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and _is_self_attr(node.func.value)):
        return node.func.value.attr
    return None


def _under_any_lock(graph: LockGraph, module: ModuleInfo,
                    node: ast.AST, stop: ast.FunctionDef) -> bool:
    """Is ``node`` under ``with <something lock-shaped>:``?  The class
    owns no lock, so this only matches borrowed locks — a ``with`` on
    an attribute of a lock-owning class or on a name containing
    ``lock``/``cond``/``mutex``."""
    cur: Optional[ast.AST] = node
    while cur is not None and cur is not stop:
        if isinstance(cur, ast.With):
            for item in cur.items:
                expr = item.context_expr
                if not isinstance(expr, ast.Attribute):
                    continue
                if any(expr.attr in attrs
                       for attrs in graph.lock_attrs.values()):
                    return True
                lowered = expr.attr.lower()
                if any(tag in lowered
                       for tag in ("lock", "cond", "mutex")):
                    return True
        cur = module.parent_of(cur)
    return False
