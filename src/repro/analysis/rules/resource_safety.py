"""Rule ``resource-safety``: file handles are opened in context
managers.

The persistence layer is exercised under fault injection — the chaos
suite makes ``read``/``write`` raise at named points — so any
``open()`` whose close depends on straight-line execution leaks its
descriptor the moment a fault fires between open and close.  A ``with``
block closes on every exit path; the rule makes that the only accepted
form.

Mechanics: every ``open(...)`` call (the builtin, i.e. a bare-name
call — ``path.open()`` methods and ``os.open`` are other APIs and out
of scope) must appear inside the context expression of a ``with``
item, directly or wrapped (``with open(...) as f:``,
``with contextlib.closing(open(...)):``).  Legitimate exceptions —
e.g. a handle stored on ``self`` and closed in a ``close()`` method —
opt out with ``# tix-lint: disable=resource-safety``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register


def _in_with_item(module: ModuleInfo, call: ast.Call) -> bool:
    """Is ``call`` (transitively) a ``with`` item's context expression?"""
    cur: Optional[ast.AST] = call
    while cur is not None:
        parent = module.parent_of(cur)
        if isinstance(parent, ast.withitem) and parent.context_expr is cur:
            return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda, ast.Module)):
            # Crossing a scope boundary: the handle escaped the
            # expression; wrapping `with` blocks further out do not
            # manage it.
            return False
        # Keep climbing through wrapper calls/expressions:
        # contextlib.closing(open(...)), io.TextIOWrapper(open(...)), …
        cur = parent
    return False


@register
class ResourceSafetyRule(Rule):
    name = "resource-safety"
    description = (
        "builtin open() calls must be used as context managers so "
        "handles close on every exit path (including injected faults)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and not _in_with_item(module, node)
                ):
                    yield self.finding(
                        module, node,
                        "open() outside a `with` block leaks the file "
                        "handle on any exception between open and "
                        "close — use `with open(...) as f:`",
                    )
