"""Rule ``operator-contract``: subclasses of the engine's ``Operator``
must play by the checked state machine.

The base class (:class:`repro.engine.base.Operator`) owns the lifecycle:
``open``/``next``/``close`` enforce the NEW→OPEN→CLOSED transitions,
tick the installed query guard, time the run, and — critically — close
every already-opened child when ``open`` fails halfway (the PR 1
regression class).  Subclasses participate through the ``_open`` /
``_next`` / ``_close`` hooks.  Three ways to silently break the
contract, all AST-detectable:

1. overriding ``open``/``next``/``close`` directly — the state checks,
   guard ticks, and error-path child cleanup are bypassed;
2. not implementing ``_next`` anywhere in the subclass chain — the
   operator explodes with ``NotImplementedError`` mid-query instead of
   failing at definition time;
3. defining ``__init__`` without calling ``super().__init__`` — the
   lifecycle state, ``children`` list, and ``OpStats`` never exist, so
   the first ``open()`` dies on a missing attribute.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    ClassInfo,
    Finding,
    Project,
    Rule,
    register,
)

#: The protocol methods owned by the base class.
_PROTOCOL = ("open", "next", "close")

#: The root class, resolved by simple name across the project.
_ROOT = "Operator"

#: Module defining the root (its own ``Operator`` is the implementation,
#: not a subclass to check).
_ROOT_MODULE = "repro/engine/base.py"


def _calls_super_init(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


@register
class OperatorContractRule(Rule):
    name = "operator-contract"
    description = (
        "Operator subclasses must implement _next, must not override "
        "open/next/close (bypassing the checked state machine and the "
        "close-children-on-error path), and __init__ overrides must "
        "call super().__init__"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for info in project.subclasses_of(_ROOT):
            if info.module.relpath == _ROOT_MODULE:
                continue
            yield from self._check_class(project, info)

    def _check_class(self, project: Project,
                     info: ClassInfo) -> Iterator[Finding]:
        for item in info.node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name in _PROTOCOL:
                yield self.finding(
                    info.module, item,
                    f"{info.name} overrides Operator.{item.name}(); the "
                    f"state machine, guard tick, and error-path child "
                    f"cleanup live in the base method — implement "
                    f"_{item.name}() instead",
                )
            if item.name == "__init__" and not _calls_super_init(item):
                yield self.finding(
                    info.module, item,
                    f"{info.name}.__init__ does not call "
                    f"super().__init__(); the operator state machine and "
                    f"OpStats are never initialized",
                )
        if not self._implements_next(project, info):
            yield self.finding(
                info.module, info.node,
                f"{info.name} neither defines nor inherits a concrete "
                f"_next() implementation",
            )

    def _implements_next(self, project: Project, info: ClassInfo) -> bool:
        if "_next" in info.method_names:
            return True
        for ancestor in project.ancestors_of(info):
            # The base Operator's _next raises NotImplementedError and
            # does not count as an implementation.
            if ancestor.name == _ROOT:
                continue
            if "_next" in ancestor.method_names:
                return True
        return False
