"""Rule ``planner-registry-drift``: access-method classes match the
planner's declared registry.

The cost-based planner enumerates physical alternatives from
:data:`repro.access.registry.ACCESS_METHODS` — a pure-literal mapping
keyed by class name.  Add a new access method without declaring it and
the planner silently never considers it; delete or rename a class and a
stale entry advertises an operator ``--force-op`` can no longer build.
This rule pins the registry to the code, both ways:

- every *qualifying* class — a public class defined under
  ``repro/access/`` or ``repro/joins/`` with a class-level ``name``
  string-literal assignment and a ``run`` method (its own, or inherited
  from a project base class) — must be a registry key;
- every registry key must name such a class, and its declared
  ``module`` must be the module that actually defines the class.

Like the metric catalog and fault-point rules, the registry is read
with ``ast.literal_eval`` from the tree being linted, not imported.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

_REGISTRY_RELPATH = "repro/access/registry.py"
_REGISTRY_NAME = "ACCESS_METHODS"
_SCAN_PREFIXES = ("repro/access/", "repro/joins/")


def _load_registry(module: ModuleInfo) -> Optional[Dict[str, dict]]:
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == _REGISTRY_NAME
            and value is not None
        ):
            try:
                parsed = ast.literal_eval(value)
            except ValueError:
                return None
            if isinstance(parsed, dict):
                return parsed
    return None


def _entry_line(module: ModuleInfo, name: str) -> int:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and node.value == name:
            return node.lineno
    return 1


def _has_name_literal(cls: ast.ClassDef) -> bool:
    """A class-level ``name = "..."`` assignment (the explain() tag
    every physical access method carries)."""
    for node in cls.body:
        targets = ()
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = (node.target,)
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                return True
    return False


def _has_own_run(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == "run"
        for node in cls.body
    )


def _module_dotted(relpath: str) -> str:
    return relpath[:-3].replace("/", ".")


@register
class PlannerRegistryDriftRule(Rule):
    name = "planner-registry-drift"
    description = (
        "physical access-method classes under repro/access and "
        "repro/joins (public, with a `name` literal and a `run` "
        "method) must match the ACCESS_METHODS registry in "
        "repro/access/registry.py, both ways"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registry_module = project.module_by_relpath(_REGISTRY_RELPATH)
        if registry_module is None:
            yield self.file_finding(
                _REGISTRY_RELPATH, 1,
                "access-method registry module not found in the tree",
            )
            return
        registry = _load_registry(registry_module)
        if registry is None:
            yield self.finding(
                registry_module, None,
                f"{_REGISTRY_NAME} is missing or not a literal dict; "
                "the planner has no declared access-method registry",
            )
            return

        # First pass: every class in the scanned subtrees, so inherited
        # `run` methods resolve across modules (EnhancedTermJoin gets
        # run() from TermJoin).  Bases are matched by simple name —
        # aliased imports of project classes would be missed, which the
        # tree does not do.
        classes: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        for module in project.modules:
            if not module.relpath.startswith(_SCAN_PREFIXES):
                continue
            if module.relpath == _REGISTRY_RELPATH:
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = (module, node)

        def has_run(name: str, seen: Set[str]) -> bool:
            if name in seen or name not in classes:
                return False
            seen.add(name)
            _, cls = classes[name]
            if _has_own_run(cls):
                return True
            return any(
                has_run(base.id, seen)
                for base in cls.bases
                if isinstance(base, ast.Name)
            )

        qualifying: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {
            name: (module, cls)
            for name, (module, cls) in classes.items()
            if not name.startswith("_")
            and _has_name_literal(cls)
            and has_run(name, set())
        }

        for name in sorted(set(qualifying) - set(registry)):
            module, cls = qualifying[name]
            yield self.finding(
                module, cls,
                f"access method {name!r} is not declared in "
                f"{_REGISTRY_NAME} — the planner will never consider "
                f"it; add an entry with its preconditions",
            )

        for name in sorted(set(registry) - set(qualifying)):
            yield self.finding(
                registry_module,
                _line_anchor(registry_module, name),
                f"registered access method {name!r} has no qualifying "
                f"class under repro/access or repro/joins — remove the "
                f"stale entry or restore the class",
            )

        for name in sorted(set(registry) & set(qualifying)):
            declared = registry[name]
            module, cls = qualifying[name]
            actual = _module_dotted(module.relpath)
            if (
                isinstance(declared, dict)
                and declared.get("module") not in (None, actual)
            ):
                yield self.finding(
                    registry_module,
                    _line_anchor(registry_module, name),
                    f"registry entry {name!r} declares module "
                    f"{declared.get('module')!r} but the class is "
                    f"defined in {actual!r}",
                )


class _line_anchor:
    """Line/col anchor for registry-entry findings."""

    def __init__(self, module: ModuleInfo, name: str) -> None:
        self.lineno = _entry_line(module, name)
        self.col_offset = 0
