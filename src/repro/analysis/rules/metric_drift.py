"""Rule ``metric-drift``: code ↔ catalog ↔ docs agree on metric names.

Dashboards, the bench report, and the golden profiles all key on metric
name strings.  A typo'd name (``termjoin.posting_scanned``), a metric
added without documentation, or a doc row for a metric that no longer
exists are all silent at runtime — the registry happily creates any
name.  This rule pins the three artifacts together:

1. every ``rec.count`` / ``rec.observe`` / ``rec.set_gauge`` call site
   in the tree must name an entry of ``repro/obs/catalog.py``'s
   ``CATALOG`` (f-string segments are matched as wildcards, so
   ``f"operator.{self.name}.rows"`` is covered by
   ``operator.*.rows``), with the verb matching the declared kind
   (``count``→counter, ``observe``→histogram, ``set_gauge``→gauge);
2. every catalog entry must be emitted by at least one call site (no
   dead entries);
3. the metric table in ``docs/observability.md`` must equal the table
   generated from the catalog (``python -m repro.obs.catalog --write``
   refreshes it).

The catalog is read with ``ast.literal_eval`` from the tree being
linted — not imported — so the rule checks the code in front of it,
not whatever copy of the package happens to be installed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule, register

_CATALOG_RELPATH = "repro/obs/catalog.py"
_DOCS_NAME = "observability.md"

#: Emission verb -> required catalog kind.
_VERB_KIND = {"count": "counter", "observe": "histogram",
              "set_gauge": "gauge"}


def _load_catalog(module: ModuleInfo) -> Optional[Dict[str, tuple]]:
    """The ``CATALOG`` literal of the catalog module, or ``None``."""
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == "CATALOG"
            and value is not None
        ):
            try:
                parsed = ast.literal_eval(value)
            except ValueError:
                return None
            if isinstance(parsed, dict):
                return parsed
    return None


def _entry_line(module: ModuleInfo, name: str) -> int:
    """Source line of the catalog entry ``name`` (best effort)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and node.value == name:
            return node.lineno
    return 1


def _is_recorder(expr: ast.expr) -> bool:
    """Is ``expr`` the obs recorder?  Matches the two idioms the
    codebase uses: a hoisted ``rec = _obs.RECORDER`` local (name
    ``rec``) and a direct ``..._obs.RECORDER.<verb>`` attribute chain."""
    if isinstance(expr, ast.Name):
        return expr.id == "rec"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "RECORDER"
    return False


def _name_patterns(arg: ast.expr) -> List[str]:
    """Wildcard patterns a metric-name argument may evaluate to.

    ``Constant`` strings map to themselves; each f-string interpolation
    becomes a ``*``; an ``a if c else b`` conditional contributes both
    branches.  Anything else (a plain variable) is unresolvable and
    yields nothing — the registry-facing wrappers that forward a
    ``name`` parameter are not emission sites.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return [arg.value]
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        pattern = "".join(parts)
        # Collapse adjacent wildcards introduced by back-to-back
        # interpolations so segment counts stay meaningful.
        while "**" in pattern:
            pattern = pattern.replace("**", "*")
        return [pattern]
    if isinstance(arg, ast.IfExp):
        return _name_patterns(arg.body) + _name_patterns(arg.orelse)
    return []


def _unify(a: str, b: str) -> bool:
    """Same semantics as :func:`repro.obs.catalog._unify`: ``*`` spans
    one or more segments, because interpolated prefixes carry dots
    (``metric_prefix = "cache.postings"`` makes
    ``f"{self.metric_prefix}.hits"`` lint as ``*.hits``)."""
    sa, sb = a.split("."), b.split(".")

    def go(i: int, j: int) -> bool:
        if i == len(sa) and j == len(sb):
            return True
        if i == len(sa) or j == len(sb):
            return False
        x, y = sa[i], sb[j]
        if (x == "*" or y == "*" or x == y) and go(i + 1, j + 1):
            return True
        if x == "*" and go(i, j + 1):
            return True
        if y == "*" and go(i + 1, j):
            return True
        return False

    return go(0, 0)


@register
class MetricDriftRule(Rule):
    name = "metric-drift"
    description = (
        "metric names emitted in code, declared in "
        "repro/obs/catalog.py, and documented in "
        "docs/observability.md must agree"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        catalog_module = project.module_by_relpath(_CATALOG_RELPATH)
        if catalog_module is None:
            yield self.file_finding(
                _CATALOG_RELPATH, 1,
                "metric catalog module not found in the tree "
                "(repro/obs/catalog.py); the single source of truth "
                "for metric names is missing",
            )
            return
        catalog = _load_catalog(catalog_module)
        if catalog is None:
            yield self.finding(
                catalog_module, None,
                "CATALOG is not a literal dict; the lint pass (and "
                "docs generation) cannot read it",
            )
            return

        emitted: List[Tuple[str, str]] = []  # (pattern, kind)
        for module in project.modules:
            yield from self._check_module(module, catalog, emitted)

        # Catalog -> code: every entry must be emitted somewhere.
        for name, spec in sorted(catalog.items()):
            kind = spec[0] if isinstance(spec, (tuple, list)) else None
            covered = any(
                _unify(pattern, name)
                and (kind is None or emitted_kind == kind)
                for pattern, emitted_kind in emitted
            )
            if not covered:
                yield self.finding(
                    catalog_module,
                    _FakeNode(_entry_line(catalog_module, name)),
                    f"catalog entry {name!r} is never emitted by any "
                    f"rec.count/observe/set_gauge call site — remove it "
                    f"or wire up the emission",
                )

        yield from self._check_docs(project, catalog, catalog_module)

    # ------------------------------------------------------------------

    def _check_module(self, module: ModuleInfo, catalog: Dict[str, tuple],
                      emitted: List[Tuple[str, str]]) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            verb = func.attr
            if verb not in _VERB_KIND or not _is_recorder(func.value):
                continue
            if not node.args:
                continue
            kind = _VERB_KIND[verb]
            for pattern in _name_patterns(node.args[0]):
                if self._covered(catalog, pattern, kind):
                    emitted.append((pattern, kind))
                else:
                    wrong_kind = self._covered(catalog, pattern, None)
                    if wrong_kind:
                        yield self.finding(
                            module, node,
                            f"metric {pattern!r} is emitted via "
                            f".{verb}() but cataloged as "
                            f"{catalog[wrong_kind][0]!r} "
                            f"({wrong_kind!r})",
                        )
                    else:
                        yield self.finding(
                            module, node,
                            f"metric {pattern!r} ({kind}) is not in "
                            f"repro/obs/catalog.py — add it to CATALOG "
                            f"and regenerate the docs table",
                        )

    def _covered(self, catalog: Dict[str, tuple], pattern: str,
                 kind: Optional[str]) -> Optional[str]:
        for name, spec in catalog.items():
            entry_kind = spec[0] if isinstance(spec, (tuple, list)) else None
            if kind is not None and entry_kind != kind:
                continue
            if _unify(pattern, name):
                return name
        return None

    # ------------------------------------------------------------------

    def _check_docs(self, project: Project, catalog: Dict[str, tuple],
                    catalog_module: ModuleInfo) -> Iterator[Finding]:
        if project.docs_dir is None:
            return
        docs_path = project.docs_dir / _DOCS_NAME
        if not docs_path.is_file():
            return
        from repro.obs.catalog import check_docs

        normalized = {
            name: tuple(spec) if isinstance(spec, list) else spec
            for name, spec in catalog.items()
        }
        problem = check_docs(
            docs_path.read_text(encoding="utf-8"), normalized
        )
        if problem:
            yield self.file_finding(
                f"docs/{_DOCS_NAME}", 1, problem,
            )


class _FakeNode:
    """Minimal line/col anchor for findings not tied to one AST node."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset
