"""Rule modules.  Importing this package registers every built-in rule
with :mod:`repro.analysis.core`'s registry."""

from repro.analysis.rules import (  # noqa: F401  (import-time registration)
    fault_point_drift,
    guard_hook,
    lock_discipline,
    metric_drift,
    operator_contract,
    planner_registry_drift,
    resource_safety,
)

__all__ = [
    "fault_point_drift",
    "guard_hook",
    "lock_discipline",
    "metric_drift",
    "operator_contract",
    "planner_registry_drift",
    "resource_safety",
]
