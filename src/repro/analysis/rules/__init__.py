"""Rule modules.  Importing this package registers every built-in rule
with :mod:`repro.analysis.core`'s registry."""

from repro.analysis.rules import (  # noqa: F401  (import-time registration)
    blocking_under_lock,
    fault_point_drift,
    guard_hook,
    lock_discipline,
    lock_order,
    metric_drift,
    operator_contract,
    planner_registry_drift,
    resource_safety,
    shared_state_race,
)

__all__ = [
    "blocking_under_lock",
    "fault_point_drift",
    "guard_hook",
    "lock_discipline",
    "lock_order",
    "metric_drift",
    "operator_contract",
    "planner_registry_drift",
    "resource_safety",
    "shared_state_race",
]
