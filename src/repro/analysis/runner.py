"""Discover sources, run rules, collect findings.

:func:`lint` is the library entry point ``tix lint`` wraps: build a
:class:`~repro.analysis.core.Project` from every ``*.py`` under a source
root, run the selected rules, and split raw findings into *active* and
*suppressed* (``# tix-lint: disable=RULE``) sets.

The default source root is the directory containing the importable
``repro`` package (i.e. ``src/`` in a checkout); the docs directory is
discovered as a ``docs/`` sibling of the root's parent, so the
metric-drift rule can verify ``docs/observability.md`` without any
configuration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.core import (
    ERROR,
    Finding,
    ModuleInfo,
    Project,
    Severity,
    get_rules,
)

__all__ = ["LintResult", "build_project", "lint", "default_root"]


def default_root() -> Path:
    """The source root of the importable ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def _discover_docs(root: Path) -> Optional[Path]:
    """``docs/`` next to the source root (checkout layout), if present."""
    for base in (root.parent, root):
        candidate = base / "docs"
        if (candidate / "observability.md").is_file():
            return candidate
    return None


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    root: str = ""

    def count_at_least(self, severity: Severity) -> int:
        return sum(
            1 for f in self.findings
            if Severity(f.severity) >= severity
        )

    @property
    def n_errors(self) -> int:
        return self.count_at_least(ERROR)

    @property
    def n_warnings(self) -> int:
        return len(self.findings) - self.n_errors

    def summary(self) -> Dict[str, int]:
        return {
            "error": self.n_errors,
            "warning": self.n_warnings,
            "suppressed": len(self.suppressed),
        }


def build_project(root: Optional[Path] = None,
                  docs_dir: Optional[Path] = None) -> Project:
    """Parse every ``*.py`` under ``root`` into a project model.

    Files that fail to parse are *not* silently skipped — a broken file
    would hide every finding in it, so the syntax error propagates.
    """
    root = Path(root) if root is not None else default_root()
    root = root.resolve()
    if not root.is_dir():
        raise ValueError(f"lint root is not a directory: {root}")
    modules: List[ModuleInfo] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        modules.append(ModuleInfo.parse(path, root))
    if docs_dir is None:
        docs_dir = _discover_docs(root)
    return Project(root, modules, docs_dir=docs_dir)


def lint(root: Optional[Path] = None,
         rules: Optional[List[str]] = None,
         docs_dir: Optional[Path] = None,
         project: Optional[Project] = None) -> LintResult:
    """Run the selected rules (default: all) over the tree at ``root``."""
    if project is None:
        project = build_project(root, docs_dir=docs_dir)
    rule_objs = get_rules(rules)
    result = LintResult(
        files_checked=len(project.modules),
        rules_run=[r.name for r in rule_objs],
        root=str(project.root),
    )
    docs_suppressions = _docs_suppressions(project)
    for rule in rule_objs:
        for finding in rule.check(project):
            if _is_suppressed(project, finding, docs_suppressions):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


def _docs_suppressions(project: Project) -> Dict[str, ModuleInfo]:
    """Suppression support is per *module*; non-Python findings (docs
    files) have none.  Index modules by relpath once."""
    return {m.relpath: m for m in project.modules}


def _is_suppressed(project: Project, finding: Finding,
                   by_relpath: Dict[str, ModuleInfo]) -> bool:
    module = by_relpath.get(finding.path)
    if module is None:
        return False
    return module.suppressed(finding.rule, finding.line)


def parse_snippet(source: str, relpath: str = "snippet.py") -> ModuleInfo:
    """Build a :class:`ModuleInfo` from an in-memory source string
    (test helper — fixtures need no real files)."""
    tree = ast.parse(source)
    return ModuleInfo(Path("/" + relpath), relpath, source, tree)
