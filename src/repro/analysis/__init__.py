"""Engine invariant linter: AST rules for the contracts the repo's
own PRs introduced.

``tix lint`` (and CI) run :func:`repro.analysis.lint` over ``src/``:
engine-specific rules check the operator lifecycle protocol, guard
ticks in access-method loops, metric-name agreement with
:mod:`repro.obs.catalog` and ``docs/observability.md``, fault-point
names against :data:`repro.resilience.faultinject.FAULT_POINTS`,
planner registry agreement, and context-managed file handles — plus
the whole-program concurrency pass
(:mod:`repro.analysis.concurrency`): lock discipline across the
concurrent modules, lock-order cycle detection with witness paths,
the thread-escape race detector, and blocking-call-under-lock.  The
static pass has a runtime twin, the opt-in lock sanitizer
(:mod:`repro.analysis.sanitizer`, ``TIX_LOCK_SANITIZER=1``).
See ``docs/static-analysis.md`` for the rule catalog and the
``# tix-lint: disable=RULE`` suppression syntax.
"""

from repro.analysis.core import (
    ERROR,
    WARNING,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    Severity,
    get_rules,
    register,
    rule_classes,
)
from repro.analysis.report import (
    JSON_VERSION,
    findings_from_payload,
    render_human,
    render_json,
    to_dict,
)
from repro.analysis.runner import (
    LintResult,
    build_project,
    default_root,
    lint,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "JSON_VERSION",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "build_project",
    "default_root",
    "findings_from_payload",
    "get_rules",
    "lint",
    "register",
    "render_human",
    "render_json",
    "rule_classes",
    "to_dict",
]
