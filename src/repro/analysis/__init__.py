"""Engine invariant linter: AST rules for the contracts PRs 1-3
introduced.

``tix lint`` (and CI) run :func:`repro.analysis.lint` over ``src/``:
six engine-specific rules check the operator lifecycle protocol, guard
ticks in access-method loops, metric-name agreement with
:mod:`repro.obs.catalog` and ``docs/observability.md``, fault-point
names against :data:`repro.resilience.faultinject.FAULT_POINTS`, lock
discipline in :mod:`repro.perf`, and context-managed file handles.
See ``docs/static-analysis.md`` for the rule catalog and the
``# tix-lint: disable=RULE`` suppression syntax.
"""

from repro.analysis.core import (
    ERROR,
    WARNING,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    Severity,
    get_rules,
    register,
    rule_classes,
)
from repro.analysis.report import (
    JSON_VERSION,
    render_human,
    render_json,
    to_dict,
)
from repro.analysis.runner import (
    LintResult,
    build_project,
    default_root,
    lint,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "JSON_VERSION",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "build_project",
    "default_root",
    "get_rules",
    "lint",
    "register",
    "render_human",
    "render_json",
    "rule_classes",
    "to_dict",
]
