"""One harness function per table/figure of the evaluation section.

Each ``run_table*`` takes a prepared store and sweep rows (from
:mod:`repro.workload.benchspec`), measures every technique with the
paper's trimmed-mean protocol, prints the table, and returns the
:class:`~repro.bench.harness.BenchResult` so callers (EXPERIMENTS
generation, tests) can assert on the numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.access.composite import Comp1, Comp2, Comp3
from repro.access.phrasefinder import PhraseFinder
from repro.access.pick import PickAccess
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.bench.harness import BenchResult, profiled_run, timed_trimmed_mean
from repro.core.pick import PickCriterion
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.joins.meet import generalized_meet
from repro.workload.benchspec import PICK_INPUT_SIZES, PhraseRow, TermRow
from repro.workload.trees import random_scored_tree
from repro.xmldb.store import XMLStore


def _simple_scorer(terms: Sequence[str]) -> WeightedCountScorer:
    """The experiments' simple scoring function: a weighted sum of the
    occurrences of each term (§6.1) — first term weight 0.8, rest 0.6."""
    return WeightedCountScorer(
        primary=[terms[0]], secondary=list(terms[1:])
    )


def _complex_scorer(terms: Sequence[str]) -> ProximityScorer:
    """The experiments' complex scoring function (§6.1): proximity plus
    relevant-children ratio."""
    return ProximityScorer(terms)


def _techniques(store: XMLStore, terms: Sequence[str],
                complex_scoring: bool,
                include_enhanced: bool) -> Dict[str, Callable[[], object]]:
    scorer = (
        _complex_scorer(terms) if complex_scoring else _simple_scorer(terms)
    )
    techs: Dict[str, Callable[[], object]] = {
        "Comp1": Comp1(store, scorer, complex_scoring).run,
        "Comp2": Comp2(store, scorer, complex_scoring).run,
        "GenMeet": lambda t=tuple(terms): generalized_meet(
            store, t, scorer, complex_scoring
        ),
        "TermJoin": TermJoin(store, scorer, complex_scoring).run,
    }
    if include_enhanced:
        techs["EnhTermJoin"] = EnhancedTermJoin(
            store, scorer, complex_scoring
        ).run
    return techs


def _sweep(
    store: XMLStore,
    rows: Sequence[TermRow],
    title: str,
    complex_scoring: bool,
    include_enhanced: bool,
    runs: int = 5,
    slow_runs: int = 3,
    profile: bool = False,
) -> BenchResult:
    cols = ["freq" if title != "Table 4" else "n_terms",
            "Comp1", "Comp2", "GenMeet", "TermJoin"]
    if include_enhanced:
        cols.append("EnhTermJoin")
    result = BenchResult(title, cols)
    result.notes.append(
        f"corpus: {store.n_elements} elements, {store.n_words} words"
    )
    for row in rows:
        techs = _techniques(
            store, row.terms, complex_scoring, include_enhanced
        )
        values: List[object] = [row.label]
        for name in cols[1:]:
            fn = techs[name]
            n_runs = slow_runs if name in ("Comp1", "Comp2") else runs
            values.append(
                timed_trimmed_mean(
                    lambda f=fn, t=row.terms: f(list(t)), runs=n_runs
                )
            )
            if profile:
                # One extra instrumented run, outside the timing loop.
                result.add_profile(row.label, name, profiled_run(
                    lambda f=fn, t=row.terms: f(list(t))
                ))
        result.add_row(*values)
    return result


def run_table1(store: XMLStore, rows: Sequence[TermRow],
               runs: int = 5, profile: bool = False) -> BenchResult:
    """Table 1: two terms, equal frequencies, simple scoring."""
    res = _sweep(store, rows, "Table 1", complex_scoring=False,
                 include_enhanced=False, runs=runs, profile=profile)
    print(res.render())
    return res


def run_table2(store: XMLStore, rows: Sequence[TermRow],
               runs: int = 5, profile: bool = False) -> BenchResult:
    """Table 2: two terms, equal frequencies, complex scoring, with
    Enhanced TermJoin."""
    res = _sweep(store, rows, "Table 2", complex_scoring=True,
                 include_enhanced=True, runs=runs, profile=profile)
    print(res.render())
    return res


def run_table3(store: XMLStore, rows: Sequence[TermRow],
               runs: int = 5, profile: bool = False) -> BenchResult:
    """Table 3: term1 fixed at 1,000, term2 varies, complex scoring."""
    res = _sweep(store, rows, "Table 3", complex_scoring=True,
                 include_enhanced=True, runs=runs, profile=profile)
    print(res.render())
    return res


def run_table4(store: XMLStore, rows: Sequence[TermRow],
               runs: int = 5, profile: bool = False) -> BenchResult:
    """Table 4: phrase size 2..7, term frequency ≈1,500, complex
    scoring."""
    res = _sweep(store, rows, "Table 4", complex_scoring=True,
                 include_enhanced=True, runs=runs, profile=profile)
    print(res.render())
    return res


def run_table5(store: XMLStore, rows: Sequence[PhraseRow],
               runs: int = 5, profile: bool = False) -> BenchResult:
    """Table 5: PhraseFinder vs Comp3 on 13 two-term phrases."""
    result = BenchResult(
        "Table 5",
        ["query", "term1_freq", "term2_freq", "result", "Comp3",
         "PhraseFinder"],
    )
    result.notes.append(
        f"corpus: {store.n_elements} elements, {store.n_words} words; "
        "frequencies scaled from the paper's (see EXPERIMENTS.md)"
    )
    pf = PhraseFinder(store)
    c3 = Comp3(store)
    for row in rows:
        terms = list(row.terms)
        measured = pf.run(terms)
        result_size = sum(m.count for m in measured)
        t_c3 = timed_trimmed_mean(lambda: c3.run(terms), runs=runs)
        t_pf = timed_trimmed_mean(lambda: pf.run(terms), runs=runs)
        if profile:
            result.add_profile(row.query, "Comp3",
                               profiled_run(lambda: c3.run(terms)))
            result.add_profile(row.query, "PhraseFinder",
                               profiled_run(lambda: pf.run(terms)))
        result.add_row(
            row.query, row.planted_freqs[0], row.planted_freqs[1],
            result_size, t_c3, t_pf,
        )
    print(result.render())
    return result


def run_pick_experiment(
    sizes: Sequence[int] = PICK_INPUT_SIZES, runs: int = 5,
    profile: bool = False,
) -> BenchResult:
    """The in-text Pick experiment: parent/child redundancy elimination
    over inputs of 200..55,000 nodes; the paper reports 0.01–1.03 s and
    we check near-linear scaling."""
    result = BenchResult(
        "Pick experiment (§6, in text)",
        ["input_nodes", "picked", "seconds"],
    )
    criterion = PickCriterion(relevance_threshold=0.8, qualification=0.5)
    for n in sizes:
        tree = random_scored_tree(n, seed=n)
        access = PickAccess(criterion)
        picked = access.picked_nodes(tree)
        t = timed_trimmed_mean(lambda: access.run(tree), runs=runs)
        if profile:
            result.add_profile(n, "Pick",
                               profiled_run(lambda: access.run(tree)))
        result.add_row(n, len(picked), t)
    print(result.render())
    return result
