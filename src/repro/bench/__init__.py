"""Benchmark harness shared by ``benchmarks/`` and the CLI.

- :mod:`repro.bench.harness` — paper-style timing (each measurement runs
  five times, the extremes are dropped, the remaining three averaged) and
  monospace table rendering;
- :mod:`repro.bench.tables` — one ``run_table*`` function per table and
  figure of §6, each returning the rows it printed so EXPERIMENTS.md and
  the tests can assert on the shapes;
- :mod:`repro.bench.cachebench` — the :mod:`repro.perf` experiments:
  warm-cache speedups per tier and batch-executor throughput;
- :mod:`repro.bench.plannerbench` — heuristic vs cost-based plan
  selection on a many-region store (``tix bench planner``).
"""

from repro.bench.harness import timed_trimmed_mean, render_table, BenchResult
from repro.bench.cachebench import run_batch_experiment, run_cache_experiment
from repro.bench.plannerbench import run_planner_bench
from repro.bench.tables import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_pick_experiment,
)

__all__ = [
    "timed_trimmed_mean",
    "render_table",
    "BenchResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_pick_experiment",
    "run_cache_experiment",
    "run_batch_experiment",
    "run_planner_bench",
]
