"""Ranking-quality metrics: precision/recall@k, average precision, nDCG.

§6.1 justifies the complex scoring function qualitatively ("it is more
accurate … makes a better use of XML's structure to enhance the quality
of the score"); these standard IR metrics let the reproduction *measure*
that claim on synthetic relevance judgments
(:mod:`repro.workload.relevance`).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Sequence, Set


def precision_at_k(ranked: Sequence[Hashable],
                   relevant: Set[Hashable], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranked[:k])
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / k


def recall_at_k(ranked: Sequence[Hashable],
                relevant: Set[Hashable], k: int) -> float:
    """Fraction of all relevant items found in the top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    hits = sum(1 for item in ranked[:k] if item in relevant)
    return hits / len(relevant)


def average_precision(ranked: Sequence[Hashable],
                      relevant: Set[Hashable]) -> float:
    """AP: mean of precision@rank over the ranks of relevant items
    (unretrieved relevant items count as zero)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def mean_average_precision(
    rankings: Sequence[Sequence[Hashable]],
    relevants: Sequence[Set[Hashable]],
) -> float:
    """MAP over a query set."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must align")
    if not rankings:
        return 0.0
    return sum(
        average_precision(r, rel) for r, rel in zip(rankings, relevants)
    ) / len(rankings)


def dcg_at_k(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a gain vector."""
    return sum(
        g / math.log2(i + 2) for i, g in enumerate(gains[:k])
    )


def ndcg_at_k(ranked: Sequence[Hashable],
              gain: Dict[Hashable, float], k: int) -> float:
    """Normalized DCG@k with graded relevance ``gain`` (absent items
    gain 0)."""
    if k <= 0:
        raise ValueError("k must be positive")
    actual = dcg_at_k([gain.get(item, 0.0) for item in ranked], k)
    ideal = dcg_at_k(sorted(gain.values(), reverse=True), k)
    return actual / ideal if ideal > 0 else 0.0


def reciprocal_rank(ranked: Sequence[Hashable],
                    relevant: Set[Hashable]) -> float:
    """1/rank of the first relevant item (0 when none retrieved)."""
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            return 1.0 / rank
    return 0.0
