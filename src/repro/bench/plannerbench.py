"""``tix bench planner`` — heuristic vs cost-based plan selection.

The paper-table corpora (:mod:`repro.workload.corpus`) put one article
per document, so every compiled query filters against a single
``//article`` region and the planner's linear-vs-bisect structural
filter decision never matters.  This experiment instead builds ONE
document holding many ``<article>`` elements — the shape where the
structural filter does real work per scored node — and compares, per
query, the plan the old hard-coded heuristics would have built against
the plan the cost-based planner picks.

For every query both plans are executed and their ranked answers
checked identical (the planner must never change results, only speed);
the table then reports best-of-``runs`` latency per plan, the decision
points where the planner diverged from the heuristic default, and the
speedup.  See ``docs/planner.md``.
"""

from __future__ import annotations

import random
import time
from typing import List, Tuple

from repro.bench.harness import BenchResult
from repro.query import parse_query
from repro.query.compiler import compile_query
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.store import XMLStore

__all__ = ["build_planner_store", "run_planner_bench"]

#: (label, query text) pairs; every query is compilable and phrased
#: against the single many-article document built below.
_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("score+sort", '''
For $a in document("lib.xml")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {"planted"}, {"paper"})
Return $a
Sortby(score)
'''),
    ("score+threshold", '''
For $a in document("lib.xml")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {"planted"}, {"number"})
Return $a
Sortby(score)
Threshold $a/@score > 0.1
'''),
    ("score+top10", '''
For $a in document("lib.xml")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {"planted"}, {"paper"})
Return $a
Sortby(score)
Threshold $a/@score > 0 stop after 10
'''),
)


def build_planner_store(n_articles: int = 200,
                        seed: int = 7) -> XMLStore:
    """One document, ``n_articles`` sibling ``<article>`` regions.

    Each article has a short title and four sections of random
    vocabulary with the term ``planted`` appearing in ~60% of articles
    — enough postings that the per-posting structural-filter cost
    dominates and the bisect filter's ``O(log regions)`` membership
    test beats the linear scan."""
    rng = random.Random(seed)
    b = DocumentBuilder()
    b.start_element("library")
    for _ in range(n_articles):
        b.start_element("article")
        b.start_element("title")
        b.text("paper number "
               + " ".join(f"w{rng.randrange(200)}" for _ in range(4)))
        b.end_element()
        for _ in range(4):
            b.start_element("section")
            b.start_element("p")
            words = [f"w{rng.randrange(200)}" for _ in range(30)]
            if rng.random() < 0.6:
                words.insert(rng.randrange(len(words)), "planted")
            b.text(" ".join(words))
            b.end_element()
            b.end_element()
        b.end_element()
    b.end_element()
    store = XMLStore()
    store.add_document(b.finish("lib.xml"))
    return store


def _best_ms(store: XMLStore, query, planner: str, runs: int) -> float:
    """Best-of-``runs`` execution latency (compile excluded)."""
    from repro.engine.base import execute

    best = float("inf")
    for _ in range(max(1, runs)):
        plan = compile_query(store, query, planner=planner)
        t0 = time.perf_counter()
        execute(plan)
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0


def _canonical(results: List[object]) -> List[Tuple[int, float]]:
    return sorted((t.root.source, t.score) for t in results)


def run_planner_bench(scale: float = 1.0, runs: int = 5) -> BenchResult:
    """Compare heuristic vs cost-based plans on the many-region store.

    ``scale`` multiplies the article count (default 200); ``runs`` is
    the best-of repetition count per plan."""
    from repro.engine.base import execute

    n_articles = max(20, int(200 * scale))
    store = build_planner_store(n_articles=n_articles)
    result = BenchResult(
        "Planner: heuristic vs cost-based physical plan selection",
        ["query", "flips", "heuristic_ms", "cost_ms", "speedup"],
        notes=[
            f"store: 1 document, {n_articles} <article> regions",
            "flips: decision points where the cost-based choice "
            "differs from the heuristic default",
            "both plans verified row- and rank-identical per query",
        ],
    )
    for label, text in _QUERIES:
        query = parse_query(text)
        cost_plan = compile_query(store, query, planner="cost")
        heur_plan = compile_query(store, query, planner="heuristic")
        cost_res = execute(cost_plan)
        heur_res = execute(heur_plan)
        if _canonical(cost_res) != _canonical(heur_res) or \
                [t.score for t in cost_res] != \
                [t.score for t in heur_res]:
            raise AssertionError(
                f"planner changed the answer for {label!r}")
        choices = cost_plan.planner_choices
        flips = ",".join(
            f"{point}={c.chosen}"
            for point, c in sorted(choices.choices.items())
            if c.flipped
        ) or "-"
        heur_ms = _best_ms(store, query, "heuristic", runs)
        cost_ms = _best_ms(store, query, "cost", runs)
        result.add_row(label, flips, heur_ms, cost_ms,
                       heur_ms / cost_ms if cost_ms else 1.0)
    print(result.render())
    return result
