"""Timing and table-rendering utilities.

The paper's protocol (§6): "Each experiment was run five times.  The
lowest and highest readings were ignored and the remaining three were
averaged."  :func:`timed_trimmed_mean` reproduces that protocol, with a
configurable run count so the slow baselines can use fewer repetitions
(the deviation is printed when that happens).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


def timed_trimmed_mean(fn: Callable[[], object], runs: int = 5) -> float:
    """Wall-clock seconds for ``fn()``, paper protocol: run ``runs``
    times, drop min and max, average the rest.  With fewer than three
    runs, the plain mean is returned."""
    times: List[float] = []
    for _ in range(max(1, runs)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    if len(times) >= 3:
        times.sort()
        times = times[1:-1]
    return sum(times) / len(times)


@dataclass
class BenchResult:
    """One rendered experiment: a header, column names, and rows of
    (label, value…) with floats formatted like the paper's tables."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def cell(self, row_label: object, column: str) -> object:
        """Value at (row with first cell == row_label, column)."""
        ci = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[ci]
        raise KeyError(f"no row labelled {row_label!r}")

    def column(self, column: str) -> List[object]:
        ci = self.columns.index(column)
        return [row[ci] for row in self.rows]

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows, self.notes)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 0.01:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 notes: Sequence[str] = ()) -> str:
    """Monospace table in the style of the paper's result tables."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [title]
    header = " | ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
