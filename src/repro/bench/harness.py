"""Timing and table-rendering utilities.

The paper's protocol (§6): "Each experiment was run five times.  The
lowest and highest readings were ignored and the remaining three were
averaged."  :func:`timed_trimmed_mean` reproduces that protocol, with a
configurable run count so the slow baselines can use fewer repetitions
(the deviation is printed when that happens).

:func:`profiled_run` executes a measured workload once more under the
observability collector (:mod:`repro.obs`) and returns the per-access-
method metric breakdown — the timed runs themselves stay uninstrumented
so the wall-clock numbers are undisturbed.  :meth:`BenchResult.to_json`
emits the table plus any attached breakdowns machine-readably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


def timed_trimmed_mean(fn: Callable[[], object], runs: int = 5) -> float:
    """Wall-clock seconds for ``fn()``, paper protocol: run ``runs``
    times, drop min and max, average the rest.  With fewer than three
    runs, the plain mean is returned."""
    times: List[float] = []
    for _ in range(max(1, runs)):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    if len(times) >= 3:
        times.sort()
        times = times[1:-1]
    return sum(times) / len(times)


def profiled_run(fn: Callable[[], object]) -> Dict[str, object]:
    """Run ``fn`` once under a fresh observability collector and return
    a flat breakdown: every collected metric (counters/gauges as
    numbers, histograms as stat dicts) plus ``wall_clock_s``.

    Use *alongside* :func:`timed_trimmed_mean`, never around it — the
    enabled collector adds per-call timing overhead that must not leak
    into the reported wall-clock numbers.
    """
    from repro import obs

    with obs.collecting() as col:
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
    breakdown: Dict[str, object] = dict(col.metrics.snapshot())
    breakdown["wall_clock_s"] = wall
    return breakdown


@dataclass
class BenchResult:
    """One rendered experiment: a header, column names, and rows of
    (label, value…) with floats formatted like the paper's tables.

    ``profiles`` optionally carries per-row, per-technique metric
    breakdowns from :func:`profiled_run`, keyed
    ``profiles[str(row_label)][technique]``.
    """

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    profiles: Dict[str, Dict[str, Dict[str, object]]] = \
        field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def cell(self, row_label: object, column: str) -> object:
        """Value at (row with first cell == row_label, column)."""
        ci = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[ci]
        raise KeyError(f"no row labelled {row_label!r}")

    def column(self, column: str) -> List[object]:
        ci = self.columns.index(column)
        return [row[ci] for row in self.rows]

    def add_profile(self, row_label: object, technique: str,
                    breakdown: Dict[str, object]) -> None:
        """Attach a :func:`profiled_run` breakdown to one cell."""
        self.profiles.setdefault(str(row_label), {})[technique] = breakdown

    def render(self) -> str:
        return render_table(self.title, self.columns, self.rows, self.notes)

    def to_json(self) -> Dict[str, object]:
        """The full result — table and per-operator breakdowns — as a
        JSON-ready dict."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
            "profiles": {
                label: {tech: dict(b) for tech, b in techs.items()}
                for label, techs in self.profiles.items()
            },
        }


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 0.01:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 notes: Sequence[str] = ()) -> str:
    """Monospace table in the style of the paper's result tables."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [title]
    header = " | ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
