"""Cache-hierarchy and batch-executor experiments (``repro.perf``).

Not a paper table — the paper ran every query cold.  These experiments
quantify what the ROADMAP's serving workload (the same queries repeated
against a mostly-static corpus) gains from the :mod:`repro.perf` layers,
on the Table-1 corpus and planted term frequencies:

- :func:`run_cache_experiment` — per planted frequency, the same
  compilable two-term query executed cold (parse + compile + execute
  each time), warm through the plan cache (execute only), and warm
  through the result cache (lookup only);
- :func:`run_batch_experiment` — an INEX-style topic batch with
  duplicates, sequential-and-cold vs. ``execute_batch`` with a shared
  :class:`~repro.perf.querycache.QueryCache`.

Timings follow the paper's trimmed-mean protocol.  Note the batch
speedup is *cache sharing*, not CPU parallelism: identical queries in
the batch are answered once (pure-Python execution serializes on the
GIL, so the pool buys overlap only on the cache layer and any I/O).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import BenchResult, timed_trimmed_mean
from repro.perf.batch import execute_batch
from repro.perf.querycache import QueryCache
from repro.resilience.guard import NullGuard
from repro.resilience.run import run_query_guarded
from repro.workload.benchspec import TermRow
from repro.xmldb.store import XMLStore


def row_query(row: TermRow) -> str:
    """The Table-1 workload as a compilable query: score every element
    by the row's planted term pair (TermJoinScan pays the same postings
    merge the TermJoin access method does)."""
    primary, secondary = row.terms[0], row.terms[1]
    return (
        'For $x in document("article00000.xml")'
        "//article/descendant-or-self::* "
        f'Score $x using ScoreFooExact($x, {{"{primary}"}}, '
        f'{{"{secondary}"}}) '
        "Return $x Sortby(score)"
    )


def run_cache_experiment(store: XMLStore, rows: Sequence[TermRow],
                         runs: int = 5) -> BenchResult:
    """Cold vs. plan-cache-warm vs. result-cache-warm, per frequency."""
    result = BenchResult(
        "Cache hierarchy",
        ["freq", "cold", "warm_plan", "warm_result", "warm_speedup"],
    )
    result.notes.append(
        f"corpus: {store.n_elements} elements, {store.n_words} words"
    )
    result.notes.append(
        "cold = parse+compile+execute per call; warm_plan = pooled "
        "compiled plan, execute only; warm_result = answer served from "
        "the result cache; warm_speedup = cold / warm_result"
    )
    store.index, store.structure  # build outside the timings
    for row in rows:
        source = row_query(row)
        cold = timed_trimmed_mean(
            lambda s=source: run_query_guarded(store, s, NullGuard()),
            runs=runs,
        )
        plan_cache = QueryCache(store, results=False)
        plan_cache.run_query(source)  # warm
        warm_plan = timed_trimmed_mean(
            lambda s=source, c=plan_cache: c.run_query(s), runs=runs
        )
        full_cache = QueryCache(store)
        full_cache.run_query(source)  # warm
        warm_result = timed_trimmed_mean(
            lambda s=source, c=full_cache: c.run_query(s), runs=runs
        )
        result.add_row(
            row.label, cold, warm_plan, warm_result,
            cold / warm_result if warm_result else float("inf"),
        )
    return result


def run_batch_experiment(store: XMLStore, rows: Sequence[TermRow],
                         runs: int = 3, repeats: int = 4,
                         max_workers: int = 4) -> BenchResult:
    """Sequential-cold vs. concurrent-cached execution of a topic batch.

    The batch is every row's query repeated ``repeats`` times (shuffled
    deterministically by interleaving), the shape of an INEX topic run
    where popular queries recur.
    """
    sources = [row_query(row) for row in rows] * repeats
    result = BenchResult(
        "Batch executor",
        ["n_queries", "sequential_cold", "batch_cached", "speedup"],
    )
    result.notes.append(
        f"{len(rows)} distinct queries x {repeats} repeats, "
        f"{max_workers} workers; speedup is cache sharing (duplicate "
        "queries answered once), not CPU parallelism"
    )
    store.index, store.structure

    def sequential() -> None:
        for s in sources:
            run_query_guarded(store, s, NullGuard())

    def batched() -> None:
        res = execute_batch(store, sources, max_workers=max_workers,
                            cache=QueryCache(store))
        assert res.n_failed == 0

    seq = timed_trimmed_mean(sequential, runs=runs)
    bat = timed_trimmed_mean(batched, runs=runs)
    result.add_row(len(sources), seq, bat,
                   seq / bat if bat else float("inf"))
    return result
