"""Schema-versioned benchmark artifacts and regression diffing.

``tix bench --json-out`` writes an *artifact*: the rendered
:class:`~repro.bench.harness.BenchResult` wrapped in an envelope that
records how it was produced (table, scale, runs) and a schema version,
so artifacts committed at different PRs stay comparable::

    {"schema_version": 1, "kind": "tix-bench",
     "table": "table1", "scale": 0.05, "runs": 3,
     "result": {"title": …, "columns": […], "rows": […], …}}

:func:`diff_artifacts` compares two artifacts cell-by-cell (matching
rows by label and columns by name) and reports relative changes beyond
a threshold — the ``benchmarks/make_report.py --diff`` entry point
flags >10% regressions between a committed baseline (e.g.
``BENCH_PR5.json``) and a fresh run.  Lower is better for every timed
cell, so ``ratio > 1`` is a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.harness import BenchResult

__all__ = [
    "SCHEMA_VERSION", "make_artifact", "load_artifact",
    "diff_artifacts", "render_diff", "diff_files", "CellDiff",
]

SCHEMA_VERSION = 1

#: The envelope discriminator.
_KIND = "tix-bench"


def make_artifact(result: BenchResult, *, table: str,
                  scale: float = 1.0, runs: int = 5,
                  ) -> Dict[str, object]:
    """Wrap a bench result in the schema-versioned envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": _KIND,
        "table": table,
        "scale": scale,
        "runs": runs,
        "result": result.to_json(),
    }


def load_artifact(path: str) -> Dict[str, object]:
    """Read + validate an artifact file.

    Raises :class:`ValueError` on a non-artifact file, an unknown
    ``kind``, or a schema version newer than this code understands.
    """
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if data.get("kind") != _KIND:
        raise ValueError(
            f"{path}: not a tix-bench artifact "
            f"(kind={data.get('kind')!r})"
        )
    version = data.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path}: bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is newer than this "
            f"build understands ({SCHEMA_VERSION})"
        )
    if not isinstance(data.get("result"), dict):
        raise ValueError(f"{path}: missing result payload")
    return data


@dataclass
class CellDiff:
    """One compared cell: ``ratio = new / old`` (lower is better)."""

    row: str
    column: str
    old: float
    new: float
    ratio: float

    @property
    def regression(self) -> bool:
        return self.ratio > 1.0

    def render(self) -> str:
        arrow = "slower" if self.regression else "faster"
        pct = abs(self.ratio - 1.0) * 100.0
        return (f"{self.row} / {self.column}: "
                f"{self.old:.4g} -> {self.new:.4g} "
                f"({pct:.1f}% {arrow})")


def _rows_by_label(result: Dict[str, object]) -> Dict[str, List[object]]:
    rows = result.get("rows")
    if not isinstance(rows, list):
        return {}
    return {str(row[0]): list(row) for row in rows if row}


def diff_artifacts(old: Dict[str, object], new: Dict[str, object],
                   threshold: float = 0.10,
                   ) -> List[CellDiff]:
    """Cells whose relative change exceeds ``threshold``.

    Rows are matched by first-cell label and columns by name; cells
    missing from either side, non-numeric cells, and near-zero
    baselines (< 1e-9 — ratios would be meaningless noise) are skipped.
    Returns regressions first, each sorted by ratio magnitude.
    """
    old_result = old.get("result")
    new_result = new.get("result")
    if not isinstance(old_result, dict) or not isinstance(new_result, dict):
        raise ValueError("artifacts missing result payloads")
    old_cols = old_result.get("columns")
    new_cols = new_result.get("columns")
    if not isinstance(old_cols, list) or not isinstance(new_cols, list):
        return []
    old_rows = _rows_by_label(old_result)
    new_rows = _rows_by_label(new_result)
    diffs: List[CellDiff] = []
    for label, new_row in new_rows.items():
        old_row = old_rows.get(label)
        if old_row is None:
            continue
        for ci, column in enumerate(new_cols):
            if ci == 0 or column not in old_cols:
                continue
            oi = old_cols.index(column)
            if ci >= len(new_row) or oi >= len(old_row):
                continue
            ov, nv = old_row[oi], new_row[ci]
            if not isinstance(ov, (int, float)) or \
                    not isinstance(nv, (int, float)) or \
                    isinstance(ov, bool) or isinstance(nv, bool):
                continue
            if abs(float(ov)) < 1e-9:
                continue
            ratio = float(nv) / float(ov)
            if abs(ratio - 1.0) > threshold:
                diffs.append(CellDiff(label, str(column), float(ov),
                                      float(nv), ratio))
    diffs.sort(key=lambda d: (not d.regression, -abs(d.ratio - 1.0)))
    return diffs


def render_diff(diffs: List[CellDiff],
                threshold: float = 0.10) -> str:
    """A human-readable diff report (empty-diff message included)."""
    if not diffs:
        return (f"no cells changed by more than "
                f"{threshold * 100:.0f}%")
    lines: List[str] = []
    regressions = [d for d in diffs if d.regression]
    if regressions:
        lines.append(f"REGRESSIONS (> {threshold * 100:.0f}% slower):")
        lines.extend(f"  {d.render()}" for d in regressions)
    improvements = [d for d in diffs if not d.regression]
    if improvements:
        lines.append(f"improvements (> {threshold * 100:.0f}% faster):")
        lines.extend(f"  {d.render()}" for d in improvements)
    return "\n".join(lines)


def diff_files(old_path: str, new_path: str,
               threshold: float = 0.10,
               ) -> Tuple[List[CellDiff], str]:
    """Load two artifact files and diff them; returns the diffs plus a
    header identifying what was compared."""
    old = load_artifact(old_path)
    new = load_artifact(new_path)
    header = (
        f"baseline: {old_path} (table={old.get('table')}, "
        f"scale={old.get('scale')}, runs={old.get('runs')})\n"
        f"candidate: {new_path} (table={new.get('table')}, "
        f"scale={new.get('scale')}, runs={new.get('runs')})"
    )
    mismatched: List[str] = []
    for key in ("table", "scale", "runs"):
        if old.get(key) != new.get(key):
            mismatched.append(key)
    if mismatched:
        header += (
            "\nwarning: artifacts differ in "
            + ", ".join(mismatched)
            + " — ratios compare unlike runs"
        )
    return diff_artifacts(old, new, threshold), header
