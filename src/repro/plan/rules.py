"""Cost formulas and physical-alternative enumeration for the planner.

:mod:`repro.plan.estimate` answers *how many rows* each operator of an
already-built plan will see; this module answers *which operator to
build*: for every decision point of the compiled query shape it
enumerates the legal physical alternatives (from the access-method
registry's declared preconditions) and prices each with a per-operator
cost formula over the same catalog statistics.

Decision points of the compiled shape (``TermJoinScan → structural
filter → rank → materialize``):

- ``score`` — the score-generating access method behind the scan leaf:
  TermJoin, EnhancedTermJoin, the Comp1/Comp2 baselines, or PhraseJoin
  (the only phrase-capable scorer, and a legal — if costlier —
  alternative for plain term queries too);
- ``filter`` — the structural filter's matching strategy: ``linear``
  probes the region list per row (unbeatable for the handful of regions
  a single-document For-path usually yields), ``bisect`` binary-searches
  the sorted region table (wins once regions number in the dozens);
- ``rank`` — only when Sortby and ``stop after K`` are both present:
  the bounded-heap ``top-k`` versus materializing ``sort-limit``.

Costs are abstract work units sharing the estimator's currency (a
posting scanned ≈ 1): only *ratios* matter, and the constants can be
recalibrated from a measured plan's :class:`~repro.engine.base.OpStats`
(:meth:`CostConstants.calibrated_from`).  Cardinalities reuse the
estimator's formulas, optionally scaled by per-operator correction
factors learned from ``tix feedback`` (see
:func:`repro.plan.optimizer.corrections_from_feedback`).

Like the estimator, this module must not import :mod:`repro.engine`;
it works from statistics, the registry, and plain query properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.access.registry import method_properties, score_methods
from repro.plan.estimate import SCORE_SELECTIVITY, term_estimate

__all__ = [
    "POINT_SCORE", "POINT_FILTER", "POINT_RANK",
    "FILTER_LINEAR", "FILTER_BISECT",
    "RANK_TOPK", "RANK_SORT_LIMIT",
    "CostConstants", "DEFAULT_CONSTANTS", "QuerySpec", "DecisionPoint",
    "Alternative", "region_fraction", "decision_points",
    "cost_alternatives",
]

#: Decision-point names (the left-hand side of ``--force-op NAME=OP``).
POINT_SCORE = "score"
POINT_FILTER = "filter"
POINT_RANK = "rank"

#: Physical options of the ``filter`` and ``rank`` points.
FILTER_LINEAR = "linear"
FILTER_BISECT = "bisect"
RANK_TOPK = "top-k"
RANK_SORT_LIMIT = "sort-limit"

#: Extra per-probe weight of a bisection step over a linear region
#: probe (tuple comparisons plus bookkeeping); sets the linear/bisect
#: crossover at a few dozen regions.
_BISECT_OVERHEAD = 2.0


def _log2(n: float) -> float:
    from math import log2

    return log2(n) if n > 1.0 else 0.0


@dataclass(frozen=True)
class CostConstants:
    """Per-unit work of the cost formulas, in the estimator's abstract
    currency (``posting`` is the unit).  ``navigate`` prices one
    parent-chain step of the composite baselines' ancestor walks."""

    posting: float = 1.0
    emit: float = 2.0
    compare: float = 0.25
    navigate: float = 0.5

    @classmethod
    def calibrated_from(cls, plan: Any) -> "CostConstants":
        """Constants recalibrated from one measured plan: the scan
        leaf's ``postings_scanned`` counter and per-operator ``OpStats``
        timings yield measured ns-per-posting / ns-per-emit ratios.
        Falls back to the defaults for any ratio the run cannot
        support (no timings, zero counters)."""
        default = cls()
        leaf = _find(plan, "termjoin-scan")
        sink = _find(plan, "materialize")
        if leaf is None:
            return default
        postings = leaf.stats.counters.get("postings_scanned", 0)
        leaf_ns = leaf.stats.open_ns + leaf.stats.next_ns
        if postings <= 0 or leaf_ns <= 0:
            return default
        ns_per_posting = leaf_ns / float(postings)
        emit = default.emit
        if sink is not None and sink.rows_out > 0:
            sink_ns = sink.stats.open_ns + sink.stats.next_ns
            if sink_ns > 0:
                emit = (sink_ns / float(sink.rows_out)) / ns_per_posting
        return cls(
            posting=1.0,
            emit=max(0.1, min(emit, 100.0)),
            compare=default.compare,
            navigate=default.navigate,
        )


def _find(plan: Any, name: str) -> Optional[Any]:
    if getattr(plan, "name", None) == name:
        return plan
    for child in getattr(plan, "children", ()):
        found = _find(child, name)
        if found is not None:
            return found
    return None


@dataclass
class QuerySpec:
    """The planner's view of one compiled query: the properties the
    decision points and cost formulas depend on, nothing else."""

    terms: Sequence[str]
    phrase_mode: bool
    min_score: Optional[float] = None
    stop_after: Optional[int] = None
    sortby: bool = False
    n_regions: int = 0
    #: fraction of the corpus region span the For-path regions cover
    #: (the structural filter's selectivity) — see :func:`region_fraction`.
    region_fraction: float = 1.0


@dataclass(frozen=True)
class DecisionPoint:
    """One physical choice the planner must make: the legal options (in
    registry/tie-break order) and the pre-planner hard-coded default."""

    point: str
    options: Tuple[str, ...]
    default: str


@dataclass(frozen=True)
class Alternative:
    """One costed option at a decision point.  ``rows`` is the stage's
    estimated *output* cardinality (identical across options — physical
    choice changes work, not results); ``cost`` is the option's own
    estimated work in abstract units."""

    op: str
    rows: float
    cost: float


def region_fraction(store: Any, regions: Sequence[Tuple[int, int, int]],
                    ) -> float:
    """Fraction of the corpus region span covered by the For-path's
    allowed (doc, start, end) regions — the same quantity the estimator
    derives for a built structural filter."""
    if not regions:
        return 1.0
    total = 0
    for doc in store.documents():
        if len(doc):
            total += doc.ends[0] - doc.starts[0] + 1
    if total <= 0:
        return 1.0
    covered = sum(rend - rstart + 1 for _doc, rstart, rend in regions)
    return max(0.0, min(covered / float(total), 1.0))


def decision_points(spec: QuerySpec) -> List[DecisionPoint]:
    """The decision points of one compiled query, with their legal
    options.  The ``rank`` point only exists when Sortby and ``stop
    after`` fuse (otherwise there is nothing to choose)."""
    points = [
        DecisionPoint(
            POINT_SCORE,
            tuple(score_methods(spec.phrase_mode)),
            "PhraseJoin" if spec.phrase_mode else "TermJoin",
        ),
        DecisionPoint(
            POINT_FILTER, (FILTER_LINEAR, FILTER_BISECT), FILTER_LINEAR,
        ),
    ]
    if spec.sortby and spec.stop_after is not None:
        points.append(DecisionPoint(
            POINT_RANK, (RANK_TOPK, RANK_SORT_LIMIT), RANK_TOPK,
        ))
    return points


# ----------------------------------------------------------------------
# Cardinalities along the pipeline (the estimator's formulas, applied
# before the plan exists)
# ----------------------------------------------------------------------

def _corrected(rows: float, key: str,
               corrections: Optional[Mapping[str, float]]) -> float:
    if corrections:
        factor = corrections.get(key)
        if factor is not None and factor > 0.0:
            rows *= factor
    return max(0.0, rows)


def _scored_rows(stats: Any, spec: QuerySpec) -> float:
    """Elements the score method emits (before the threshold cut)."""
    return sum(term_estimate(stats, t) for t in spec.terms)


def _leaf_rows(stats: Any, spec: QuerySpec,
               corrections: Optional[Mapping[str, float]]) -> float:
    rows = _scored_rows(stats, spec)
    if spec.min_score is not None and spec.min_score > 0:
        rows *= SCORE_SELECTIVITY
    return _corrected(rows, "termjoin-scan", corrections)


def _filter_rows(stats: Any, spec: QuerySpec,
                 corrections: Optional[Mapping[str, float]]) -> float:
    rows = _leaf_rows(stats, spec, corrections) * spec.region_fraction
    return _corrected(rows, "structural-filter", corrections)


def _postings(stats: Any, terms: Sequence[str]) -> float:
    """Postings the scan must consume: every word of every item."""
    total = 0.0
    for item in terms:
        for word in item.split():
            total += float(stats.frequency(word.lower()))
    return total


# ----------------------------------------------------------------------
# Per-operator cost formulas
# ----------------------------------------------------------------------

def _score_cost(method: str, stats: Any, spec: QuerySpec,
                c: CostConstants) -> float:
    """Work of one score-generating method: ``P`` postings consumed,
    ``S`` elements scored, ``T`` query items, ``d`` the average element
    depth (the composites' ancestor-walk witness factor)."""
    p = _postings(stats, spec.terms)
    s = _scored_rows(stats, spec)
    t = float(max(len(spec.terms), 1))
    d = max(1.0, float(getattr(stats, "avg_depth", 1.0)))
    key = method_properties(method)["cost"]
    merge = p * c.posting + p * _log2(max(t, 2.0)) * c.compare
    if key in ("termjoin", "enhanced-termjoin"):
        # One stack-based pass; Enhanced differs only under complex
        # scoring (child counts from the structure index), which the
        # compiled shape never uses — identical cost, and the registry
        # order tie-break keeps TermJoin.
        return merge + s * c.emit
    if key == "comp1":
        # Per-posting ancestor walks (witness volume P·d), sort-based
        # grouping of the witnesses, scored union.
        w = p * d
        return (p * c.posting + w * c.navigate
                + w * _log2(max(w, 2.0)) * c.compare + s * c.emit)
    if key == "comp2":
        # Comp1 with the selection replaced by structural joins against
        # the full element table: one table pass per query item.
        w = p * d
        e = float(max(1, stats.n_elements))
        return (p * c.posting + w * c.navigate
                + w * _log2(max(w, 2.0)) * c.compare
                + t * e * c.compare + s * c.emit)
    if key == "phrasejoin":
        # PhraseFinder intersection (offset checks per posting) feeding
        # the occurrence stack join — strictly more machinery than the
        # plain merge, so TermJoin wins pure term queries.
        return (p * c.posting + p * c.compare
                + s * (c.emit + c.navigate))
    raise ValueError(f"no cost formula for score method {method!r}")


def _filter_cost(kind: str, rows_in: float, n_regions: int,
                 c: CostConstants) -> float:
    r = float(max(n_regions, 1))
    if kind == FILTER_LINEAR:
        # Expected half-list probe on a hit, full list on a miss.
        return rows_in * (0.5 * r + 1.0) * c.compare
    if kind == FILTER_BISECT:
        return (rows_in * (_log2(max(r, 2.0)) + 2.0)
                * c.compare * _BISECT_OVERHEAD)
    raise ValueError(f"no cost formula for filter kind {kind!r}")


def _rank_cost(kind: str, rows_in: float, k: int,
               c: CostConstants) -> float:
    heap = max(min(float(k), rows_in), 2.0)
    if kind == RANK_TOPK:
        return rows_in * _log2(heap) * c.compare
    if kind == RANK_SORT_LIMIT:
        return (rows_in * _log2(max(rows_in, 2.0)) * c.compare
                + min(rows_in, float(k)) * c.compare)
    raise ValueError(f"no cost formula for rank kind {kind!r}")


def cost_alternatives(
    point: DecisionPoint,
    spec: QuerySpec,
    stats: Any,
    constants: Optional[CostConstants] = None,
    corrections: Optional[Mapping[str, float]] = None,
) -> List[Alternative]:
    """Every option of ``point`` costed for ``spec`` under the catalog
    ``stats``, in option order (the caller's stable tie-break).  Costs
    are clamped finite and non-negative — one bad statistic must not
    poison the whole plan choice."""
    c = constants or CostConstants()
    out: List[Alternative] = []
    if point.point == POINT_SCORE:
        rows = _leaf_rows(stats, spec, corrections)
        for op in point.options:
            out.append(Alternative(
                op, rows, _clamp_cost(_score_cost(op, stats, spec, c)),
            ))
        return out
    if point.point == POINT_FILTER:
        rows_in = _leaf_rows(stats, spec, corrections)
        rows = _filter_rows(stats, spec, corrections)
        for op in point.options:
            out.append(Alternative(
                op, rows,
                _clamp_cost(_filter_cost(op, rows_in, spec.n_regions, c)),
            ))
        return out
    if point.point == POINT_RANK:
        rows_in = _filter_rows(stats, spec, corrections)
        k = int(spec.stop_after or 0)
        rows = min(rows_in, float(k)) if k else rows_in
        for op in point.options:
            out.append(Alternative(
                op, rows, _clamp_cost(_rank_cost(op, rows_in, k, c)),
            ))
        return out
    raise ValueError(f"unknown decision point {point.point!r}")


def _clamp_cost(cost: float) -> float:
    if cost != cost or cost < 0.0:  # NaN-safe
        return 0.0
    if cost == float("inf"):
        return 1e18
    return cost


# The constants instance the planner uses when none is supplied.
DEFAULT_CONSTANTS = CostConstants()
