"""Misestimation feedback from the query audit log (``tix feedback``).

The audit log (:mod:`repro.obs.events`) records, per query, the top
plan operators with their actual row counts — and, from schema
version 2 on, the estimator's ``est_rows`` for each.  This module
closes the observe-then-adapt loop: it aggregates those records into a
report of the **worst-misestimated operators and query shapes** —
occurrence count, median / max q-error, mean estimated vs actual rows —
the adaptive re-costing input a cost-based planner consumes.

Both record versions are read: version-1 records (pre-estimator) carry
no estimates and are tallied as ``n_without_estimates`` instead of
being dropped silently; records from schema versions this build does
not understand are counted in ``n_skipped``.  A mixed-version JSONL
file therefore aggregates exactly its estimating subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Tuple

from repro.plan.estimate import qerror

__all__ = [
    "SUPPORTED_EVENT_VERSIONS", "OpFeedback", "FeedbackReport",
    "feedback_report",
]

#: Audit-log schema versions this reader understands (v3 only adds
#: ``trace_id``, which this aggregation ignores).
SUPPORTED_EVENT_VERSIONS = (1, 2, 3)


@dataclass
class OpFeedback:
    """Aggregate misestimation of one operator (or query shape)."""

    key: str
    count: int
    median_qerror: float
    max_qerror: float
    mean_est_rows: float
    mean_actual_rows: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "count": self.count,
            "median_qerror": round(self.median_qerror, 3),
            "max_qerror": round(self.max_qerror, 3),
            "mean_est_rows": round(self.mean_est_rows, 1),
            "mean_actual_rows": round(self.mean_actual_rows, 1),
        }


@dataclass
class FeedbackReport:
    """The aggregated misestimation report."""

    n_records: int = 0
    n_skipped: int = 0
    n_without_estimates: int = 0
    operators: List[OpFeedback] = field(default_factory=list)
    shapes: List[OpFeedback] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_records": self.n_records,
            "n_skipped": self.n_skipped,
            "n_without_estimates": self.n_without_estimates,
            "operators": [o.to_dict() for o in self.operators],
            "shapes": [s.to_dict() for s in self.shapes],
        }

    def render(self, limit: int = 10) -> str:
        """Human-readable report, worst median q-error first."""
        lines: List[str] = [
            f"{self.n_records} audit records "
            f"({self.n_without_estimates} without estimates, "
            f"{self.n_skipped} unsupported-version)",
        ]
        for title, entries in (("operators", self.operators),
                               ("query shapes", self.shapes)):
            if not entries:
                continue
            lines.append("")
            lines.append(f"worst-misestimated {title}:")
            lines.append(
                f"  {'count':>5} {'med-q':>8} {'max-q':>8} "
                f"{'est-rows':>9} {'act-rows':>9}  key"
            )
            for e in entries[:limit]:
                lines.append(
                    f"  {e.count:>5} {e.median_qerror:>8.2f} "
                    f"{e.max_qerror:>8.2f} {e.mean_est_rows:>9.1f} "
                    f"{e.mean_actual_rows:>9.1f}  {e.key}"
                )
        if not self.operators:
            lines.append("")
            lines.append(
                "no per-operator estimates found — the log predates "
                "the estimator (schema v1) or holds evaluator-fallback "
                "queries only"
            )
        return "\n".join(lines)


def _op_qerror(op: Dict[str, object]) -> Tuple[bool, float, float, float]:
    """``(has_estimate, q, est, actual)`` for one logged operator."""
    est = op.get("est_rows")
    actual = op.get("rows")
    if not isinstance(est, (int, float)) \
            or not isinstance(actual, (int, float)):
        return False, 0.0, 0.0, 0.0
    q = op.get("q_error")
    if not isinstance(q, (int, float)):
        q = qerror(float(est), float(actual))
    return True, float(q), float(est), float(actual)


def _aggregate(samples: Dict[str, List[Tuple[float, float, float]]],
               min_count: int) -> List[OpFeedback]:
    out: List[OpFeedback] = []
    for key, rows in samples.items():
        if len(rows) < min_count:
            continue
        qs = [q for q, _e, _a in rows]
        out.append(OpFeedback(
            key=key,
            count=len(rows),
            median_qerror=float(median(qs)),
            max_qerror=max(qs),
            mean_est_rows=sum(e for _q, e, _a in rows) / len(rows),
            mean_actual_rows=sum(a for _q, _e, a in rows) / len(rows),
        ))
    out.sort(key=lambda e: (e.median_qerror, e.max_qerror, e.count),
             reverse=True)
    return out


def feedback_report(records: Iterable[Dict[str, object]],
                    min_count: int = 1) -> FeedbackReport:
    """Aggregate audit-log ``records`` (parsed JSONL, see
    :func:`repro.obs.events.iter_events`) into a
    :class:`FeedbackReport`.  ``min_count`` drops operators / shapes
    seen fewer times than that (singletons are noise at scale)."""
    report = FeedbackReport()
    by_op: Dict[str, List[Tuple[float, float, float]]] = {}
    by_shape: Dict[str, List[Tuple[float, float, float]]] = {}
    for record in records:
        version = record.get("v")
        if version not in SUPPORTED_EVENT_VERSIONS:
            report.n_skipped += 1
            continue
        report.n_records += 1
        ops = record.get("ops")
        shape = str(record.get("query_sha256", ""))
        saw_estimate = False
        if isinstance(ops, list):
            for op in ops:
                if not isinstance(op, dict):
                    continue
                has, q, est, actual = _op_qerror(op)
                if not has:
                    continue
                saw_estimate = True
                key = str(op.get("operator", "?"))
                by_op.setdefault(key, []).append((q, est, actual))
                if shape:
                    by_shape.setdefault(shape, []).append(
                        (q, est, actual)
                    )
        if not saw_estimate:
            report.n_without_estimates += 1
    report.operators = _aggregate(by_op, min_count)
    report.shapes = _aggregate(by_shape, min_count)
    return report
