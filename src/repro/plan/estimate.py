"""Per-operator cardinality / cost estimation from catalog statistics.

:func:`estimate_plan` walks a compiled operator tree bottom-up and
annotates every node with ``est_rows`` (expected output cardinality)
and ``est_cost`` (abstract work units, cumulative over children) —
computed *before* execution from :class:`~repro.xmldb.stats.
StoreStatistics` alone:

- **score-generating leaves** (``termjoin-scan``, ``phrasefinder-scan``)
  estimate from catalog term frequencies: a single-term leaf's estimate
  is exactly ``stats.frequency(term)`` (asserted by the unit tests), a
  multi-term leaf sums its terms, and each additional word of a phrase
  multiplies the rarest term's frequency by :data:`PHRASE_ADJACENCY`;
- **structural predicates** (``structural-filter``) turn their
  (doc, start, end) regions into a fraction of the corpus region span;
- **structural / twig containment** uses the level histogram
  (:func:`containment_selectivity`: an element at level *l* has *l*
  proper ancestors, so the histogram gives the exact count of
  ancestor–descendant pairs) and the fan-out statistics;
- **composites** multiply child estimates under the independence
  assumption, with every intermediate clamped to ``[0, bound]`` so one
  bad guess cannot cascade into astronomic plans.

Estimates are *heuristics with stated assumptions*, not promises; the
point is that ``explain(analyze=True)`` then shows the per-operator
**q-error** — ``max(est/actual, actual/est)``, 1-safe — so
misestimation is measurable, logged to the audit trail, and
aggregatable by ``tix feedback`` (:mod:`repro.plan.feedback`).

The module deliberately dispatches on ``Operator.name`` strings rather
than operator classes: it must not import :mod:`repro.engine` (the
engine imports this module for q-error rendering), and unknown
operators degrade to a documented passthrough instead of failing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Tuple

from repro import obs as _obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmldb.stats import StoreStatistics
    from repro.xmldb.store import XMLStore

__all__ = [
    "PHRASE_ADJACENCY", "SCORE_SELECTIVITY",
    "qerror", "term_estimate", "phrase_estimate",
    "containment_selectivity", "structural_join_estimate",
    "estimate_plan", "iter_estimated", "publish_qerrors",
]

#: Probability that a posting of the rarest phrase term extends the
#: phrase by one adjacent word.  Applied once per extra phrase word, so
#: a single-word "phrase" keeps its exact catalog frequency.
PHRASE_ADJACENCY = 0.1

#: Fraction of scored elements assumed to survive a positive
#: score-threshold (V-condition) filter.
SCORE_SELECTIVITY = 0.5

#: Fraction of inputs assumed to survive a pattern selection (Select /
#: Pick) when no structural statistics apply.
FILTER_SELECTIVITY = 0.5

#: Join selectivity for value joins (similarity predicates) under the
#: independence assumption.
JOIN_SELECTIVITY = 0.1

# Abstract per-item work units of the cost model.  Only ratios matter:
# a posting scanned during a merge is the unit, emitting/copying a tree
# costs more, and a comparison inside a sort costs less.
_COST_POSTING = 1.0
_COST_EMIT = 2.0
_COST_COMPARE = 0.25


def qerror(est: float, actual: float) -> float:
    """The q-error of an estimate: ``max(est/actual, actual/est)``.

    1-safe: both sides are clamped to at least one row before dividing,
    so empty results (actual = 0) and zero estimates yield finite,
    comparable errors instead of division blow-ups — the convention of
    the cardinality-estimation literature.  Perfect estimates (and any
    pair that only disagrees below one row) score exactly ``1.0``.
    """
    e = max(float(est), 1.0)
    a = max(float(actual), 1.0)
    return e / a if e >= a else a / e


def _log2(n: float) -> float:
    from math import log2

    return log2(n) if n > 1.0 else 0.0


def term_estimate(stats: "StoreStatistics", term: str) -> float:
    """Catalog cardinality of one query item: the corpus frequency of a
    single term (0.0 for unknown terms — the ``strict`` flag changes
    runtime behaviour, not the catalog's answer), or the phrase
    estimate when ``term`` contains whitespace."""
    parts = term.split()
    if len(parts) > 1:
        return phrase_estimate(stats, parts)
    return float(stats.frequency(term.lower()))


def phrase_estimate(stats: "StoreStatistics", terms) -> float:
    """Estimated phrase occurrences: the rarest term bounds the count,
    and each additional word keeps only :data:`PHRASE_ADJACENCY` of it.
    A zero-frequency word makes the whole phrase impossible (0.0)."""
    freqs = [float(stats.frequency(t.lower())) for t in terms]
    if not freqs:
        return 0.0
    low = min(freqs)
    return low * (PHRASE_ADJACENCY ** (len(freqs) - 1))


def containment_selectivity(stats: "StoreStatistics") -> float:
    """P(random element X is a proper ancestor of random element Y),
    read exactly off the level histogram: an element at level *l* has
    *l* proper ancestors, so the number of ancestor–descendant pairs is
    ``Σ_l l·count(l)`` out of ``N²`` ordered pairs."""
    n = max(1, stats.n_elements)
    pairs = sum(
        level * count for level, count in stats.level_counts.items()
    )
    return min(1.0, pairs / float(n * n))


def structural_join_estimate(stats: "StoreStatistics",
                             n_ancestors: float,
                             n_descendants: float) -> float:
    """Expected output of an ancestor–descendant structural (or twig
    edge) join between two element sets, under the independence
    assumption: ``|A|·|D|·P(containment)``, clamped so the output never
    exceeds every descendant paired with its full ancestor chain
    (``|D| · max_depth``) — the level histogram's hard bound."""
    est = n_ancestors * n_descendants * containment_selectivity(stats)
    bound = n_descendants * max(1.0, float(stats.max_depth))
    return _clamp(est, bound)


def _clamp(value: float, upper: Optional[float] = None) -> float:
    if value < 0.0:
        return 0.0
    if upper is not None and value > upper:
        return upper
    return value


# ----------------------------------------------------------------------
# The tree walk
# ----------------------------------------------------------------------

def _region_selectivity(op: Any, stats: "StoreStatistics") -> float:
    """Fraction of the corpus region span covered by a
    structural-filter's allowed (doc, start, end) regions."""
    regions = getattr(op, "regions", None)
    store = getattr(op, "store", None)
    if not regions or store is None:
        return 1.0
    total = 0
    for doc in store.documents():
        if len(doc):
            total += doc.ends[0] - doc.starts[0] + 1
    if total <= 0:
        return 1.0
    covered = sum(rend - rstart + 1 for _doc, rstart, rend in regions)
    return _clamp(covered / float(total), 1.0)


def _estimate_node(op: Any, stats: "StoreStatistics",
                   child_rows: Tuple[float, ...]) -> Tuple[float, float]:
    """``(est_rows, own_cost)`` of one operator given its children's
    estimated cardinalities.  Dispatch is by ``op.name``."""
    name = getattr(op, "name", "operator")
    n_elements = float(max(1, stats.n_elements))
    first = child_rows[0] if child_rows else 0.0

    if name == "termjoin-scan":
        terms = getattr(op, "terms", ())
        est = sum(term_estimate(stats, t) for t in terms)
        if getattr(op, "min_score", None) is not None \
                and op.min_score > 0:
            est *= SCORE_SELECTIVITY
        cost = est * _COST_POSTING + est * _log2(est) * _COST_COMPARE
        return est, cost
    if name == "phrasefinder-scan":
        tokens = getattr(op, "phrase_terms", ())
        est = phrase_estimate(stats, tokens)
        scanned = sum(term_estimate(stats, t) for t in tokens)
        return est, scanned * _COST_POSTING
    if name == "tag-scan":
        tag = getattr(op, "tag", None)
        est = float(stats.tag_counts.get(tag, 0))
        if getattr(op, "doc_name", None) is not None:
            est /= float(max(1, getattr(op.store, "n_documents", 1)))
        return est, est * _COST_EMIT
    if name == "doc-source":
        store = getattr(op, "store", None)
        n_docs = float(getattr(store, "n_documents", 1) or 1)
        est = 1.0 if getattr(op, "doc_name", None) is not None else n_docs
        return est, est * _COST_EMIT
    if name == "structural-filter":
        est = first * _region_selectivity(op, stats)
        return est, first * _COST_COMPARE
    if name == "threshold":
        est = first
        if getattr(op, "min_score", None) is not None \
                and op.min_score > 0:
            est *= SCORE_SELECTIVITY
        top_k = getattr(op, "top_k", None)
        if top_k is not None:
            est = _clamp(est, float(top_k))
        return est, first * _COST_COMPARE
    if name in ("limit", "top-k"):
        k = float(getattr(op, "k", 0) or 0)
        bound = _clamp(first, k) if k else first
        if name == "top-k":
            return bound, first * _log2(max(k, 1.0)) * _COST_COMPARE
        return bound, bound * _COST_COMPARE
    if name == "sort":
        return first, first * _log2(first) * _COST_COMPARE
    if name == "materialize":
        return first, first * _COST_EMIT
    if name in ("select", "join"):
        # Pattern selection: embeddings are ancestor-descendant
        # containments, so the level histogram drives the estimate and
        # the depth bound caps the per-input witness blow-up.
        est = first * FILTER_SELECTIVITY
        if first > 1.0:
            est = max(est, structural_join_estimate(stats, first, first)
                      * FILTER_SELECTIVITY)
        bound = first * max(1.0, float(stats.max_depth))
        return _clamp(est, bound), first * _COST_COMPARE
    if name == "pick":
        return first * FILTER_SELECTIVITY, first * _COST_COMPARE
    if name == "project":
        return first, first * _COST_EMIT
    if name == "product":
        left = child_rows[0] if child_rows else 0.0
        right = child_rows[1] if len(child_rows) > 1 else 0.0
        est = _clamp(left * right, n_elements * n_elements)
        return est, est * _COST_EMIT
    if name == "value-join":
        left = child_rows[0] if child_rows else 0.0
        right = child_rows[1] if len(child_rows) > 1 else 0.0
        est = _clamp(left * right * JOIN_SELECTIVITY,
                     n_elements * n_elements)
        return est, left * right * _COST_COMPARE
    if name == "scored-union":
        est = sum(child_rows)
        return est, est * _COST_COMPARE
    if name == "union":
        est = sum(child_rows)
        return est, est * _COST_EMIT
    # Unknown operator: sources scan the corpus, single-child operators
    # pass through, multi-child operators emit the union bound.
    if not child_rows:
        return n_elements, n_elements * _COST_EMIT
    if len(child_rows) == 1:
        return first, first * _COST_COMPARE
    return sum(child_rows), sum(child_rows) * _COST_COMPARE


def estimate_plan(plan: Any, store: "XMLStore") -> float:
    """Annotate every operator of ``plan`` with ``est_rows`` and
    ``est_cost`` (cumulative: own work plus children) from the store's
    cached :class:`~repro.xmldb.stats.StoreStatistics`; returns the
    root's estimated cardinality.

    The statistics catalog is built at most once per
    ``store.generation`` (see :meth:`repro.xmldb.store.XMLStore.stats`),
    so per-query estimation is a cheap tree walk.  Emits one
    ``estimate.computed`` count per annotated plan while a collector is
    installed.
    """
    stats = store.stats
    est = _walk(plan, stats)
    rec = _obs.RECORDER
    if rec.enabled:
        rec.count("estimate.computed")
    return est


def _walk(op: Any, stats: "StoreStatistics") -> float:
    child_rows = []
    child_cost = 0.0
    for child in getattr(op, "children", ()):
        child_rows.append(_walk(child, stats))
        child_cost += getattr(child, "est_cost", 0.0) or 0.0
    est, own_cost = _estimate_node(op, stats, tuple(child_rows))
    est = _clamp(est)
    op.est_rows = est
    op.est_cost = child_cost + _clamp(own_cost)
    return est


def iter_estimated(plan: Any) -> Iterator[Any]:
    """Yield every operator of an annotated plan (pre-order) that
    carries an estimate."""
    if getattr(plan, "est_rows", None) is not None:
        yield plan
    for child in getattr(plan, "children", ()):
        for op in iter_estimated(child):
            yield op


def publish_qerrors(plan: Any) -> Dict[str, float]:
    """After execution, compare every operator's ``est_rows`` with its
    actual ``rows_out`` and feed each per-operator q-error into the
    ``estimate.qerror`` histogram (no-op without a collector).  Returns
    ``{describe: q-error}`` for the annotated operators, so callers can
    render or log the same numbers."""
    out: Dict[str, float] = {}
    rec = _obs.RECORDER
    enabled = rec.enabled
    for op in iter_estimated(plan):
        q = qerror(op.est_rows, op.rows_out)
        out[op.describe()] = q
        if enabled:
            rec.observe("estimate.qerror", q)
    return out
