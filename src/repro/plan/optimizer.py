"""Cost-based physical plan selection (the optimizer proper).

The compiler (:mod:`repro.query.compiler`) lowers the paper's canonical
query shape onto a fixed logical pipeline; *which physical operator*
fills each slot is decided here.  The design follows PostBOUND's
chainable ``PhysicalOperatorSelection`` abstraction: every stage
receives the assignment made so far and may override it, and stages
compose with :meth:`PhysicalOperatorSelection.chain_with`, so later
concerns (user hints today, sharding or adaptive re-planning tomorrow)
layer on without touching the base policy.

The stock stages:

- :class:`CostBasedSelection` — enumerate the legal alternatives per
  decision point (from the access-method registry's preconditions) and
  pick the cheapest under the :mod:`repro.plan.rules` cost formulas;
  optional per-operator correction factors from ``tix feedback`` bend
  the cardinalities toward observed reality
  (:func:`corrections_from_feedback`);
- :class:`HeuristicSelection` — reproduce the pre-planner hard-coded
  choices exactly (``--planner heuristic``), while still costing the
  alternatives so EXPLAIN can show what the cost model *would* do;
- :class:`ForcedSelection` — pin named decision points
  (``--force-op score=Comp1``), validated against the registry's
  preconditions; the differential test layer runs every legal pin and
  asserts result equivalence.

The chosen-vs-rejected record (:class:`PlanChoices`) travels on the
built plan root, where ``explain()`` and ``plan_stats()`` render it.

Emitted metrics (cataloged in :mod:`repro.obs.catalog`):
``planner.plans``, ``planner.decisions``, ``planner.flips`` (cost
choice differs from the heuristic default), ``planner.forced``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro import obs as _obs
from repro.errors import PlannerHintError, QueryCompileError
from repro.plan.rules import (
    Alternative,
    CostConstants,
    QuerySpec,
    cost_alternatives,
    decision_points,
)

__all__ = [
    "Choice", "PlanChoices", "PhysicalOperatorSelection",
    "CostBasedSelection", "HeuristicSelection", "ForcedSelection",
    "PLANNERS", "make_selection", "choose_plan",
    "parse_force_ops", "corrections_from_feedback",
]

#: Valid ``planner=`` option values of :func:`make_selection` /
#: ``compile_query``.
PLANNERS = ("cost", "heuristic")


@dataclass
class Choice:
    """One resolved decision point: the chosen operator, which stage
    decided (``cost`` / ``heuristic`` / ``forced``), the pre-planner
    default, and every costed alternative (chosen one included)."""

    point: str
    chosen: str
    source: str
    default: str
    alternatives: List[Alternative] = field(default_factory=list)

    @property
    def flipped(self) -> bool:
        """Did the planner pick something the old hard-coded plan
        would not have?"""
        return self.chosen != self.default

    def cost_of(self, op: str) -> Optional[float]:
        for alt in self.alternatives:
            if alt.op == op:
                return alt.cost
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "chosen": self.chosen,
            "source": self.source,
            "default": self.default,
            "flipped": self.flipped,
            "alternatives": [
                {"op": a.op, "cost": a.cost, "rows": a.rows}
                for a in self.alternatives
            ],
        }


@dataclass
class PlanChoices:
    """The full physical assignment of one compiled query, as made by a
    selection chain.  Attached to the built plan root
    (``plan.planner_choices``) for EXPLAIN rendering."""

    planner: str
    choices: Dict[str, Choice] = field(default_factory=dict)

    def chosen(self, point: str, default: Optional[str] = None,
               ) -> Optional[str]:
        choice = self.choices.get(point)
        return choice.chosen if choice is not None else default

    def set(self, choice: Choice) -> None:
        self.choices[choice.point] = choice

    def __iter__(self) -> Iterable[Choice]:
        return iter(self.choices.values())

    @property
    def n_flipped(self) -> int:
        return sum(1 for c in self.choices.values() if c.flipped)

    @property
    def n_forced(self) -> int:
        return sum(
            1 for c in self.choices.values() if c.source == "forced"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "planner": self.planner,
            "choices": [
                c.to_dict() for c in self.choices.values()
            ],
        }

    def render(self) -> str:
        """The EXPLAIN footer: one line per decision point, chosen
        first, rejected alternatives with their costs after it."""
        lines = [f"planner: {self.planner}"]
        for c in self.choices.values():
            cost = c.cost_of(c.chosen)
            cost_txt = f"cost={cost:.1f} " if cost is not None else ""
            flip = " *flip*" if c.flipped else ""
            line = (f"  {c.point} = {c.chosen}"
                    f" [{cost_txt}source={c.source}]{flip}")
            rejected = [a for a in c.alternatives if a.op != c.chosen]
            if rejected:
                alts = ", ".join(
                    f"{a.op} cost={a.cost:.1f}" for a in rejected
                )
                line += f"  (rejected: {alts})"
            lines.append(line)
        return "\n".join(lines)


class PhysicalOperatorSelection(abc.ABC):
    """One stage of the physical-selection chain.

    Stages form a singly-linked chain: each applies its policy to the
    assignment produced so far, then delegates to ``next_selection``.
    Later stages win — chaining a :class:`ForcedSelection` after a
    :class:`CostBasedSelection` overrides the costed choice for the
    pinned points and leaves the rest alone.
    """

    def __init__(self) -> None:
        self.next_selection: Optional[PhysicalOperatorSelection] = None

    def chain_with(self, next_selection: "PhysicalOperatorSelection",
                   ) -> "PhysicalOperatorSelection":
        """Append ``next_selection`` at the end of this chain; returns
        ``self`` so chains build fluently."""
        stage = self
        while stage.next_selection is not None:
            stage = stage.next_selection
        stage.next_selection = next_selection
        return self

    def select_physical_operators(self, spec: QuerySpec, stats: Any,
                                  assignment: PlanChoices) -> PlanChoices:
        assignment = self._apply_selection(spec, stats, assignment)
        if self.next_selection is not None:
            assignment = self.next_selection.select_physical_operators(
                spec, stats, assignment,
            )
        return assignment

    @abc.abstractmethod
    def _apply_selection(self, spec: QuerySpec, stats: Any,
                         assignment: PlanChoices) -> PlanChoices:
        """Apply this stage's policy; must return the (possibly
        mutated) assignment."""


class CostBasedSelection(PhysicalOperatorSelection):
    """Pick the cheapest legal alternative at every decision point.

    Ties keep the first option in registry order, which deliberately
    coincides with the heuristic default — equal evidence must not flip
    a plan.  ``corrections`` (operator key → cardinality factor) bend
    the row estimates the formulas consume; ``constants`` override the
    cost-unit calibration."""

    def __init__(self,
                 constants: Optional[CostConstants] = None,
                 corrections: Optional[Mapping[str, float]] = None,
                 ) -> None:
        super().__init__()
        self.constants = constants
        self.corrections = dict(corrections) if corrections else None

    def _apply_selection(self, spec: QuerySpec, stats: Any,
                         assignment: PlanChoices) -> PlanChoices:
        for point in decision_points(spec):
            alts = cost_alternatives(
                point, spec, stats,
                constants=self.constants,
                corrections=self.corrections,
            )
            best = min(alts, key=lambda a: a.cost)
            assignment.set(Choice(
                point=point.point,
                chosen=best.op,
                source="cost",
                default=point.default,
                alternatives=alts,
            ))
        return assignment


class HeuristicSelection(PhysicalOperatorSelection):
    """Reproduce the pre-planner hard-coded plan exactly (``--planner
    heuristic``).  Alternatives are still costed so EXPLAIN shows what
    the cost model would have preferred."""

    def __init__(self,
                 constants: Optional[CostConstants] = None) -> None:
        super().__init__()
        self.constants = constants

    def _apply_selection(self, spec: QuerySpec, stats: Any,
                         assignment: PlanChoices) -> PlanChoices:
        for point in decision_points(spec):
            alts = cost_alternatives(
                point, spec, stats, constants=self.constants,
            )
            assignment.set(Choice(
                point=point.point,
                chosen=point.default,
                source="heuristic",
                default=point.default,
                alternatives=alts,
            ))
        return assignment


class ForcedSelection(PhysicalOperatorSelection):
    """Pin named decision points to named operators (``--force-op``).

    Overrides are validated against the query's actual decision points
    and their legal options: forcing an unknown point, an unknown
    operator, or one whose declared preconditions the query violates
    (``score=TermJoin`` on a phrase query) raises
    :class:`~repro.errors.QueryCompileError` — a forced plan must never
    silently compute the wrong answer."""

    def __init__(self, overrides: Mapping[str, str]) -> None:
        super().__init__()
        self.overrides = dict(overrides)

    def _apply_selection(self, spec: QuerySpec, stats: Any,
                         assignment: PlanChoices) -> PlanChoices:
        points = {p.point: p for p in decision_points(spec)}
        for name, op in self.overrides.items():
            point = points.get(name)
            if point is None:
                raise PlannerHintError(
                    f"--force-op: unknown decision point {name!r} "
                    f"(query has: {', '.join(sorted(points))})"
                )
            if op not in point.options:
                raise PlannerHintError(
                    f"--force-op: {op!r} is not a legal option for "
                    f"{name!r} on this query "
                    f"(legal: {', '.join(point.options)})"
                )
            prior = assignment.choices.get(name)
            assignment.set(Choice(
                point=name,
                chosen=op,
                source="forced",
                default=point.default,
                alternatives=(
                    prior.alternatives if prior is not None else []
                ),
            ))
        return assignment


def make_selection(
    planner: str = "cost",
    force_ops: Optional[Mapping[str, str]] = None,
    constants: Optional[CostConstants] = None,
    corrections: Optional[Mapping[str, float]] = None,
) -> PhysicalOperatorSelection:
    """The standard selection chain: a base policy (``cost`` or
    ``heuristic``) with a :class:`ForcedSelection` chained after it
    when hints are present."""
    base: PhysicalOperatorSelection
    if planner == "cost":
        base = CostBasedSelection(
            constants=constants, corrections=corrections,
        )
    elif planner == "heuristic":
        base = HeuristicSelection(constants=constants)
    else:
        raise QueryCompileError(
            f"unknown planner {planner!r} "
            f"(valid: {', '.join(PLANNERS)})"
        )
    if force_ops:
        base.chain_with(ForcedSelection(force_ops))
    return base


def choose_plan(spec: QuerySpec, stats: Any,
                selection: PhysicalOperatorSelection,
                planner: str = "cost") -> PlanChoices:
    """Run the selection chain over the query's decision points and
    publish the planner metrics."""
    assignment = selection.select_physical_operators(
        spec, stats, PlanChoices(planner=planner),
    )
    rec = _obs.RECORDER
    if rec.enabled:
        rec.count("planner.plans")
        rec.count("planner.decisions", len(assignment.choices))
        if assignment.n_flipped:
            rec.count("planner.flips", assignment.n_flipped)
        if assignment.n_forced:
            rec.count("planner.forced", assignment.n_forced)
    return assignment


def parse_force_ops(pairs: Optional[Iterable[str]]) -> Dict[str, str]:
    """Parse repeated ``--force-op NAME=OP`` hints into an override
    mapping; malformed hints raise
    :class:`~repro.errors.QueryCompileError` (the CLI surfaces it)."""
    out: Dict[str, str] = {}
    for pair in pairs or ():
        name, sep, op = pair.partition("=")
        name, op = name.strip(), op.strip()
        if not sep or not name or not op:
            raise PlannerHintError(
                f"--force-op expects NAME=OP, got {pair!r}"
            )
        out[name] = op
    return out


def corrections_from_feedback(report: Any,
                              max_factor: float = 10.0,
                              ) -> Dict[str, float]:
    """Per-operator cardinality correction factors from a ``tix
    feedback`` misestimation report
    (:class:`~repro.plan.feedback.FeedbackReport`).

    For every aggregated operator with observed traffic, the factor is
    ``mean_actual_rows / mean_est_rows`` clamped to
    ``[1/max_factor, max_factor]`` — re-costing multiplies the
    estimator's cardinality by it, so systematically underestimated
    operators get costed at their observed volume.  Operators without
    usable data are simply absent (factor 1 implied)."""
    out: Dict[str, float] = {}
    lo = 1.0 / max_factor
    for entry in getattr(report, "operators", ()):
        est = getattr(entry, "mean_est_rows", 0.0) or 0.0
        actual = getattr(entry, "mean_actual_rows", 0.0) or 0.0
        if est <= 0.0 or actual <= 0.0:
            continue
        factor = actual / est
        out[entry.key] = max(lo, min(factor, max_factor))
    return out
