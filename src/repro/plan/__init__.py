"""Plan-level estimation and feedback (the optimizer's eyes).

The paper's access methods (TermJoin vs Comp1/Comp2, PhraseFinder vs
Comp3, structural vs twig joins) are rival physical plans for the same
logical work; choosing between them needs per-operator cardinality and
cost estimates, and *trusting* the choice needs visibility into how
wrong those estimates are.  This package provides both halves of that
observe-then-adapt loop:

- :mod:`repro.plan.estimate` — a catalog-driven estimator that walks a
  compiled operator tree and annotates every node with ``est_rows`` /
  ``est_cost`` from :class:`~repro.xmldb.stats.StoreStatistics`
  (cached on the store keyed by ``store.generation``), plus the
  ``q-error`` metric surfaced by ``explain(analyze=True)``;
- :mod:`repro.plan.feedback` — aggregation of estimated-vs-actual plan
  stats out of the audit log (:mod:`repro.obs.events`) into a
  misestimation report, the re-costing input the cost-based planner
  consumes (``tix feedback``);
- :mod:`repro.plan.rules` — per-operator cost formulas and legal
  physical-alternative enumeration, driven by the access-method
  registry's declared preconditions
  (:mod:`repro.access.registry`);
- :mod:`repro.plan.optimizer` — the cost-based planner: a chainable
  PostBOUND-style ``PhysicalOperatorSelection`` (cost → heuristic →
  forced hints), chosen-vs-rejected surfaced through ``explain()``
  (see ``docs/planner.md``).
"""

from repro.plan.estimate import (
    containment_selectivity,
    estimate_plan,
    phrase_estimate,
    publish_qerrors,
    qerror,
    structural_join_estimate,
    term_estimate,
)
from repro.plan.feedback import (
    FeedbackReport,
    OpFeedback,
    feedback_report,
)
from repro.plan.optimizer import (
    Choice,
    CostBasedSelection,
    ForcedSelection,
    HeuristicSelection,
    PhysicalOperatorSelection,
    PlanChoices,
    choose_plan,
    corrections_from_feedback,
    make_selection,
    parse_force_ops,
)
from repro.plan.rules import (
    Alternative,
    CostConstants,
    DecisionPoint,
    QuerySpec,
    cost_alternatives,
    decision_points,
)

__all__ = [
    "containment_selectivity",
    "estimate_plan",
    "phrase_estimate",
    "publish_qerrors",
    "qerror",
    "structural_join_estimate",
    "term_estimate",
    "FeedbackReport",
    "OpFeedback",
    "feedback_report",
    "Choice",
    "CostBasedSelection",
    "ForcedSelection",
    "HeuristicSelection",
    "PhysicalOperatorSelection",
    "PlanChoices",
    "choose_plan",
    "corrections_from_feedback",
    "make_selection",
    "parse_force_ops",
    "Alternative",
    "CostConstants",
    "DecisionPoint",
    "QuerySpec",
    "cost_alternatives",
    "decision_points",
]
