"""Synthetic INEX-like workload generation.

The paper evaluates on the INEX collection (IEEE articles, 18M elements).
That corpus is not redistributable, and the experiments only depend on
(a) the hierarchical shape of technical articles and (b) exact control of
per-term and per-phrase corpus frequencies — which this package provides:

- :mod:`repro.workload.corpus` — deterministic article generator with a
  Zipf background vocabulary and exact-frequency term/phrase planting;
- :mod:`repro.workload.trees` — synthetic scored trees for the Pick
  experiment;
- :mod:`repro.workload.benchspec` — the parameter grids of every table
  in §6, mapped to planted-term specs.
"""

from repro.workload.corpus import CorpusSpec, generate_corpus
from repro.workload.trees import random_scored_tree
from repro.workload.benchspec import (
    TABLE1_FREQUENCIES,
    TABLE3_TERM2_FREQUENCIES,
    TABLE4_PHRASE_SIZES,
    TABLE5_PHRASES,
    table123_spec,
    table4_spec,
    table5_spec,
)
from repro.workload.relevance import (
    build_relevance_workload,
    score_quality_experiment,
)

__all__ = [
    "CorpusSpec",
    "generate_corpus",
    "random_scored_tree",
    "TABLE1_FREQUENCIES",
    "TABLE3_TERM2_FREQUENCIES",
    "TABLE4_PHRASE_SIZES",
    "TABLE5_PHRASES",
    "table123_spec",
    "table4_spec",
    "table5_spec",
    "build_relevance_workload",
    "score_quality_experiment",
]
