"""Relevance-judged workload: measuring scoring *quality*, not just speed.

§6.1 claims the complex scoring function "is more accurate than the
simple one … [it] makes a better use of XML's structure to enhance the
quality of the score."  This workload makes that claim testable:

The construction mirrors the paper's own motivating example for complex
scoring ("an article may be assigned a low score if there is only one
paragraph buried in it that contains the query terms, even if all the
query terms are present, and repeated many times, within this one
paragraph"):

- **relevant sections** are topical throughout: every paragraph gets one
  adjacent ``topiqa topiqb`` pair — broad, proximate evidence;
- **distractor sections** have *more* total occurrences, but all buried
  in a single paragraph.

A frequency-count (simple) scorer ranks the distractors *higher* (they
contain more occurrences); the complex scorer's relevant-children ratio
and proximity bonus recover the true ranking.  The experiment
(:func:`score_quality_experiment`) quantifies this with
precision/MAP/nDCG against the planted ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.access.termjoin import TermJoin
from repro.bench.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
)
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.workload.corpus import CorpusSpec, generate_corpus
from repro.xmldb.store import XMLStore

QUERY_TERMS = ("topiqa", "topiqb")


@dataclass
class RelevanceWorkload:
    """A corpus plus ground-truth judgments."""

    store: XMLStore
    relevant: Set[Tuple[int, int]]     # (doc, section node id)
    distractors: Set[Tuple[int, int]]
    query_terms: Tuple[str, str] = QUERY_TERMS


def build_relevance_workload(
    n_articles: int = 30,
    n_relevant: int = 12,
    n_distractors: int = 24,
    occurrences_per_section: int = 4,
    seed: int = 77,
) -> RelevanceWorkload:
    """Generate the corpus and plant relevant/distractor sections."""
    store = generate_corpus(CorpusSpec(n_articles=n_articles, seed=seed))
    rng = random.Random(seed + 1)
    ta, tb = QUERY_TERMS

    # Collect every section with its paragraphs, per document.
    sections: List[Tuple[int, int, List[int]]] = []  # (doc, sec, [p…])
    for doc in store.documents():
        for sec in doc.find_by_tag("section"):
            ps = [c for c in doc.children(sec) if doc.tags[c] == "p"]
            if ps:
                sections.append((doc.doc_id, sec, ps))
    rng.shuffle(sections)
    need = n_relevant + n_distractors
    if len(sections) < need:
        raise ValueError(
            f"corpus has only {len(sections)} sections; "
            f"need {need} — increase n_articles"
        )

    # Documents are immutable; rebuild the corpus with planted text by
    # regenerating paragraph content through a fresh store.  Rather than
    # re-running the generator, plant by rewriting the chosen documents'
    # XML (serialize → insert → reparse) — simple and exercises the
    # parser path, at tiny-corpus cost.
    relevant_keys: Set[Tuple[int, int]] = set()
    distractor_keys: Set[Tuple[int, int]] = set()
    plans: Dict[int, List[Tuple[int, str]]] = {}  # doc -> [(p node, text)]
    for i, (doc_id, sec, ps) in enumerate(sections[:need]):
        if i < n_relevant:
            relevant_keys.add((doc_id, sec))
            # Topical throughout: one adjacent pair in EVERY paragraph
            # (2·|ps| occurrences, spread, proximate).
            for p in ps:
                plans.setdefault(doc_id, []).append((p, f" {ta} {tb}"))
        else:
            distractor_keys.add((doc_id, sec))
            # Buried: strictly MORE occurrences (2·|ps| + margin), all
            # in one paragraph, same-term runs first so the only
            # cross-term adjacency is a single boundary pair.
            target = rng.choice(ps)
            k = len(ps) + occurrences_per_section
            blob = " ".join([ta] * k) + " " + " ".join([tb] * k)
            plans.setdefault(doc_id, []).append((target, " " + blob))

    rebuilt = XMLStore()
    for doc in store.documents():
        if doc.doc_id not in plans:
            rebuilt.add_document(_reparse(doc, doc.doc_id))
            continue
        additions: Dict[int, List[str]] = {}
        for node, text in plans[doc.doc_id]:
            additions.setdefault(node, []).append(text)
        rebuilt.add_document(
            _rebuild_with_text(doc, additions, doc.doc_id)
        )
    return RelevanceWorkload(rebuilt, relevant_keys, distractor_keys)


def _reparse(doc, doc_id):
    from repro.xmldb.parser import parse_document

    return parse_document(doc.serialize(), name=doc.name, doc_id=doc_id)


def _rebuild_with_text(doc, additions: Dict[int, List[str]], doc_id):
    """Re-serialize ``doc`` with extra text appended inside the given
    nodes, then reparse.  Node ids are stable because only text (not
    elements) is added."""
    from repro.xmldb.builder import DocumentBuilder

    b = DocumentBuilder()

    def emit(nid: int) -> None:
        b.start_element(doc.tags[nid], doc.attrs.get(nid) or None)
        for item in doc.content[nid]:
            if isinstance(item, int):
                emit(item)
            else:
                b.text(item)
        for extra in additions.get(nid, ()):
            b.text(extra)
        b.end_element()

    emit(0)
    return b.finish(doc.name, doc_id)


@dataclass
class QualityResult:
    """Metrics of one scorer on the workload."""

    scorer_name: str
    precision_at_10: float
    average_precision: float
    ndcg_at_10: float


def rank_sections(workload: RelevanceWorkload, scorer,
                  complex_scoring: bool) -> List[Tuple[int, int]]:
    """Rank the corpus's sections with the given scorer via TermJoin."""
    store = workload.store
    results = TermJoin(store, scorer, complex_scoring) \
        .run(list(workload.query_terms))
    section_scores = [
        ((r.doc_id, r.node_id), r.score)
        for r in results
        if store.document(r.doc_id).tags[r.node_id] == "section"
    ]
    section_scores.sort(key=lambda kv: -kv[1])
    return [key for key, _score in section_scores]


def score_quality_experiment(
    workload: RelevanceWorkload,
) -> List[QualityResult]:
    """Rank sections with the simple and the complex scoring function
    and measure against the planted ground truth."""
    ta, tb = workload.query_terms
    scorers = [
        ("simple", WeightedCountScorer([ta], [tb]), False),
        ("complex", ProximityScorer([ta, tb]), True),
    ]
    out: List[QualityResult] = []
    gain = {key: 1.0 for key in workload.relevant}
    for name, scorer, complex_scoring in scorers:
        ranked = rank_sections(workload, scorer, complex_scoring)
        out.append(QualityResult(
            scorer_name=name,
            precision_at_10=precision_at_k(ranked, workload.relevant, 10),
            average_precision=average_precision(
                ranked, workload.relevant
            ),
            ndcg_at_10=ndcg_at_k(ranked, gain, 10),
        ))
    return out
