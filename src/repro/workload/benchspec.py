"""Parameter grids for every experiment in §6, mapped to corpus specs.

Each ``table*_spec`` function returns ``(CorpusSpec, rows)`` where the
rows carry the paper's sweep parameter (term frequency, phrase size, …)
plus the planted terms realizing it.  A ``scale`` factor shrinks all
planted frequencies proportionally (used by the test suite to run the
same code on tiny corpora; the benchmarks use ``scale=1.0`` = the paper's
frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workload.corpus import CorpusSpec

#: Table 1/2 sweep: approximate frequency of both terms of the query.
TABLE1_FREQUENCIES = [
    20, 100, 200, 300, 500, 1000, 2000, 3000, 5500, 7000, 10000,
]

#: Table 3 sweep: term1 fixed at 1,000, term2 frequency varies.
TABLE3_TERM1_FREQUENCY = 1000
TABLE3_TERM2_FREQUENCIES = [20, 200, 1000, 3000, 7000]

#: Table 4 sweep: number of terms, each with frequency ≈ 1,500.
TABLE4_PHRASE_SIZES = [2, 3, 4, 5, 6, 7]
TABLE4_TERM_FREQUENCY = 1500

#: Table 5: (term1 freq, term2 freq, result size) per query, verbatim
#: from the paper.  Equal frequencies across rows denote the *same* term.
TABLE5_PHRASES: List[Tuple[int, int, int]] = [
    (121076, 44930, 27991),
    (121076, 79677, 462),
    (107269, 146477, 1219),
    (107269, 79677, 1212),
    (98405, 146477, 877),
    (121076, 146477, 1189),
    (90482, 68801, 116),
    (121076, 45988, 34),
    (121076, 107269, 320),
    (98405, 28044, 455),
    (146477, 68801, 1372),
    (121076, 68801, 249),
    (98405, 107269, 17),
]

#: Pick experiment input sizes (the paper reports 200 → 55,000 nodes).
PICK_INPUT_SIZES = [200, 1000, 5000, 15000, 30000, 55000]


@dataclass(frozen=True)
class TermRow:
    """One sweep row: the paper's nominal parameter and the terms that
    realize it in the synthetic corpus."""

    label: int          # the paper's nominal frequency / phrase size
    terms: Tuple[str, ...]
    planted: Tuple[int, ...]  # actual planted frequency per term


def _scaled(freq: int, scale: float) -> int:
    return max(4, int(round(freq * scale)))


def table123_spec(
    scale: float = 1.0, n_articles: int = 600, seed: int = 1234
) -> Tuple[CorpusSpec, Dict[str, List[TermRow]]]:
    """One corpus serving Tables 1, 2 and 3.

    Plants a term pair per Table-1 frequency, a fixed term1 plus a term2
    per Table-3 frequency, and returns rows keyed ``"table1"`` /
    ``"table3"``.
    """
    planted: Dict[str, int] = {}
    t1_rows: List[TermRow] = []
    for f in TABLE1_FREQUENCIES:
        sf = _scaled(f, scale)
        ta, tb = f"qa{f}", f"qb{f}"
        planted[ta] = sf
        planted[tb] = sf
        t1_rows.append(TermRow(f, (ta, tb), (sf, sf)))

    t3_rows: List[TermRow] = []
    fixed = "qfix1000"
    fixed_f = _scaled(TABLE3_TERM1_FREQUENCY, scale)
    planted[fixed] = fixed_f
    for f in TABLE3_TERM2_FREQUENCIES:
        sf = _scaled(f, scale)
        tv = f"qv{f}"
        planted[tv] = sf
        t3_rows.append(TermRow(f, (fixed, tv), (fixed_f, sf)))

    spec = CorpusSpec(
        n_articles=max(4, int(n_articles * max(scale, 0.02))),
        planted_terms=planted,
        seed=seed,
    )
    return spec, {"table1": t1_rows, "table3": t3_rows}


def table4_spec(
    scale: float = 1.0, n_articles: int = 400, seed: int = 5678
) -> Tuple[CorpusSpec, List[TermRow]]:
    """Corpus and rows for Table 4: queries of 2..7 terms, every term
    planted at ≈1,500 occurrences.  Row *k* uses the first *k* terms, as
    the paper 'kept adding one term at a time'."""
    sf = _scaled(TABLE4_TERM_FREQUENCY, scale)
    terms = [f"qt4x{i}" for i in range(max(TABLE4_PHRASE_SIZES))]
    planted = {t: sf for t in terms}
    rows = [
        TermRow(k, tuple(terms[:k]), tuple([sf] * k))
        for k in TABLE4_PHRASE_SIZES
    ]
    spec = CorpusSpec(
        n_articles=max(4, int(n_articles * max(scale, 0.02))),
        planted_terms=planted,
        seed=seed,
    )
    return spec, rows


@dataclass(frozen=True)
class PhraseRow:
    """One Table-5 row: the phrase's two terms, their paper-nominal
    frequencies, and the planted result size (phrase occurrences)."""

    query: int
    terms: Tuple[str, str]
    nominal_freqs: Tuple[int, int]
    planted_freqs: Tuple[int, int]
    result_size: int


def table5_spec(
    scale: float = 0.05, n_articles: int = 400, seed: int = 9012
) -> Tuple[CorpusSpec, List[PhraseRow]]:
    """Corpus and rows for Table 5.

    The paper's phrase terms are extremely frequent (28k–146k
    occurrences); the default ``scale=0.05`` shrinks them 20× while
    preserving every ratio (frequencies *and* result sizes scale
    together), which EXPERIMENTS.md documents.  Terms with equal nominal
    frequency across rows are the same term, as in the paper.
    """
    distinct_freqs = sorted(
        {f for row in TABLE5_PHRASES for f in row[:2]}
    )
    term_of = {f: f"u{f}" for f in distinct_freqs}
    phrase_counts: Dict[Tuple[str, ...], int] = {}
    phrase_budget: Dict[str, int] = {t: 0 for t in term_of.values()}
    rows: List[PhraseRow] = []
    for qi, (f1, f2, rsize) in enumerate(TABLE5_PHRASES, start=1):
        t1, t2 = term_of[f1], term_of[f2]
        planted_r = max(1, int(round(rsize * scale)))
        phrase_counts[(t1, t2)] = planted_r
        phrase_budget[t1] += planted_r
        phrase_budget[t2] += planted_r
        rows.append(
            PhraseRow(
                query=qi,
                terms=(t1, t2),
                nominal_freqs=(f1, f2),
                planted_freqs=(_scaled(f1, scale), _scaled(f2, scale)),
                result_size=planted_r,
            )
        )
    planted_terms: Dict[str, int] = {}
    for f, t in term_of.items():
        singles = _scaled(f, scale) - phrase_budget[t]
        if singles < 0:
            raise ValueError(
                f"scale {scale} leaves term {t} with negative single "
                f"budget; raise the scale"
            )
        planted_terms[t] = singles
    spec = CorpusSpec(
        n_articles=max(4, int(n_articles * max(scale * 5, 0.02))),
        planted_terms=planted_terms,
        planted_phrases=phrase_counts,
        seed=seed,
    )
    return spec, rows
