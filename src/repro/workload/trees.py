"""Synthetic scored trees for the Pick experiment (§6, in-text).

The paper evaluates Pick on inputs of 200 to 55,000 nodes with the
parent/child redundancy-elimination criterion.  These helpers build random
scored trees of an exact size with a controllable relevant-score fraction.
"""

from __future__ import annotations

import random

from repro.core.trees import SNode, STree


def random_scored_tree(
    n_nodes: int,
    seed: int = 7,
    max_fanout: int = 8,
    relevant_fraction: float = 0.3,
    relevance_threshold: float = 0.8,
) -> STree:
    """A random tree with exactly ``n_nodes`` nodes, every node scored:
    about ``relevant_fraction`` of nodes score above
    ``relevance_threshold`` (uniform in [threshold, threshold+2]) and the
    rest below (uniform in [0, threshold))."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    rng = random.Random(seed)

    def make_score() -> float:
        if rng.random() < relevant_fraction:
            return relevance_threshold + rng.random() * 2.0
        return rng.random() * relevance_threshold * 0.999

    root = SNode("n0", score=make_score())
    nodes = [root]
    open_nodes = [root]  # nodes that may still take children
    for i in range(1, n_nodes):
        parent = rng.choice(open_nodes)
        child = SNode(f"n{i}", score=make_score())
        parent.add_child(child)
        nodes.append(child)
        open_nodes.append(child)
        if len(parent.children) >= max_fanout:
            open_nodes.remove(parent)
    return STree(root)
