"""Deterministic synthetic corpus generator.

Articles follow the INEX/IEEE shape the paper's running example uses:

::

    article
      article-title
      author (fname, sname)
      chapter*
        ct
        section*
          section-title
          p*

Background text is drawn from a Zipf-weighted vocabulary (``w0``, ``w1``,
…), and *planted* terms/phrases are inserted at uniformly random positions
with **exact** total counts — the experiments sweep term frequency, so the
generator makes frequency a first-class input rather than a property to
hunt for in found data.

Everything is driven by one :class:`random.Random` seeded from the spec,
so corpora are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.store import XMLStore

FIRST_NAMES = ["jane", "john", "wei", "maria", "ahmed", "sara", "ivan", "mei"]
LAST_NAMES = ["doe", "smith", "chen", "garcia", "khan", "novak", "tanaka"]


@dataclass
class CorpusSpec:
    """Shape and content parameters of a synthetic corpus."""

    n_articles: int = 100
    chapters_per_article: Tuple[int, int] = (2, 4)
    sections_per_chapter: Tuple[int, int] = (2, 4)
    paragraphs_per_section: Tuple[int, int] = (3, 6)
    words_per_paragraph: Tuple[int, int] = (10, 30)
    title_words: Tuple[int, int] = (2, 5)
    vocabulary_size: int = 20000
    #: term -> exact corpus frequency to plant
    planted_terms: Dict[str, int] = field(default_factory=dict)
    #: phrase (tuple of terms) -> exact adjacent-occurrence count
    planted_phrases: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    seed: int = 42


class _Vocabulary:
    """Zipf-weighted background vocabulary."""

    def __init__(self, size: int, rng: random.Random):
        self.words = [f"w{i}" for i in range(size)]
        weights = [1.0 / (rank + 10) for rank in range(size)]
        total = sum(weights)
        cum = []
        acc = 0.0
        for w in weights:
            acc += w
            cum.append(acc / total)
        self._cum = cum
        self._rng = rng

    def sample(self, k: int) -> List[str]:
        return self._rng.choices(self.words, cum_weights=self._cum, k=k)


def generate_corpus(spec: CorpusSpec) -> XMLStore:
    """Generate a store of articles per ``spec`` (deterministic)."""
    rng = random.Random(spec.seed)
    vocab = _Vocabulary(spec.vocabulary_size, rng)

    # Phase 1: structural skeleton with background text.  Each text slot
    # is a mutable word list we can plant into afterwards.
    articles: List[dict] = []
    paragraph_slots: List[List[str]] = []  # all plantable text slots

    def span(lo_hi: Tuple[int, int]) -> int:
        return rng.randint(*lo_hi)

    for _ in range(spec.n_articles):
        art = {
            "title": vocab.sample(span(spec.title_words)),
            "fname": rng.choice(FIRST_NAMES),
            "sname": rng.choice(LAST_NAMES),
            "chapters": [],
        }
        for _c in range(span(spec.chapters_per_article)):
            chapter = {
                "ct": vocab.sample(span(spec.title_words)),
                "sections": [],
            }
            for _s in range(span(spec.sections_per_chapter)):
                section = {
                    "st": vocab.sample(span(spec.title_words)),
                    "paragraphs": [],
                }
                for _p in range(span(spec.paragraphs_per_section)):
                    para = vocab.sample(span(spec.words_per_paragraph))
                    section["paragraphs"].append(para)
                    paragraph_slots.append(para)
                chapter["sections"].append(section)
            art["chapters"].append(chapter)
        articles.append(art)

    if not paragraph_slots and (spec.planted_terms or spec.planted_phrases):
        raise ValueError("no paragraphs to plant terms into")

    # Phase 2: exact-frequency planting.  Single terms first, phrases
    # last: a later insertion landing inside an already-planted phrase
    # would split its adjacency, so phrases go in when no further
    # insertions follow (phrase-phrase splits remain possible but rare;
    # the harness reports *measured* result sizes for this reason).
    for term, count in spec.planted_terms.items():
        for _ in range(count):
            para = rng.choice(paragraph_slots)
            para.insert(rng.randrange(len(para) + 1), term)
    for phrase, count in spec.planted_phrases.items():
        block = list(phrase)
        for _ in range(count):
            para = rng.choice(paragraph_slots)
            i = rng.randrange(len(para) + 1)
            para[i:i] = block

    # Phase 3: build one document per article.
    store = XMLStore()
    for i, art in enumerate(articles):
        b = DocumentBuilder()
        b.start_element("article")
        b.element("article-title", " ".join(art["title"]))
        b.start_element("author", {"id": "first"})
        b.element("fname", art["fname"])
        b.element("sname", art["sname"])
        b.end_element()
        for chapter in art["chapters"]:
            b.start_element("chapter")
            b.element("ct", " ".join(chapter["ct"]))
            for section in chapter["sections"]:
                b.start_element("section")
                b.element("section-title", " ".join(section["st"]))
                for para in section["paragraphs"]:
                    b.element("p", " ".join(para))
                b.end_element()
            b.end_element()
        b.end_element()
        store.add_document(b.finish(f"article{i:05d}.xml", doc_id=i))
    return store
