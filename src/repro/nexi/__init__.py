"""NEXI: the INEX content-and-structure query front end.

The paper evaluates on the INEX collection, whose official topic language
is NEXI (Narrowed Extended XPath I) — content-only keyword queries and
content-and-structure queries such as::

    //article[about(.//sec, "search engine")]//sec[about(., ranking)]

This package parses the NEXI subset INEX topics actually use and
evaluates it on the TIX machinery: structural constraints via the
holistic twig join, ``about`` relevance via the scoring-function library
and TermJoin-style subtree scoring, ranking via the standard top-k path.

Entry point::

    from repro.nexi import run_nexi
    hits = run_nexi(store, '//article//sec[about(., "search engine")]')
"""

from repro.nexi.ast import AboutClause, BoolOp, NexiPath, NexiStep
from repro.nexi.parser import parse_nexi
from repro.nexi.evaluator import NexiHit, evaluate_nexi, run_nexi

__all__ = [
    "AboutClause",
    "BoolOp",
    "NexiPath",
    "NexiStep",
    "parse_nexi",
    "NexiHit",
    "evaluate_nexi",
    "run_nexi",
]
