"""AST for the NEXI subset.

Grammar (see :mod:`repro.nexi.parser`):

- a **content-only** query is a bare term/phrase list — it has no
  structural part (``NexiPath`` with no steps and one about clause over
  ``.``);
- a **content-and-structure** query is a descendant-step path where any
  step may carry predicates of ``about`` clauses combined with
  ``and`` / ``or``.

``about`` clauses hold a relative path (``.`` or ``.//tag…``) plus the
query terms (single terms and quoted phrases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class AboutClause:
    """``about(<rel-path>, term term "a phrase" …)``.

    ``relative`` is a tuple of tag names to descend through from the
    context element (empty = the context element itself, i.e. ``.``).
    ``phrases`` are the query strings (multi-word entries are phrases).
    """

    relative: Tuple[str, ...]
    phrases: Tuple[str, ...]


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over about clauses (nested combos allowed)."""

    op: str  # "and" | "or"
    operands: Tuple["Predicate", ...]


Predicate = Union[AboutClause, BoolOp]


@dataclass(frozen=True)
class NexiStep:
    """One ``//tag`` step with its predicates."""

    tag: str  # "*" allowed
    predicate: Optional[Predicate] = None


@dataclass(frozen=True)
class NexiPath:
    """A full query: descendant steps; the last step is the target of
    retrieval.  A content-only query has a single wildcard step whose
    predicate is one about clause over ``.``."""

    steps: Tuple[NexiStep, ...]

    @property
    def target(self) -> NexiStep:
        return self.steps[-1]
