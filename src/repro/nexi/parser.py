"""Parser for the NEXI subset.

Grammar::

    query      := co-query | cas-query
    co-query   := termlist                      # no leading '//'
    cas-query  := ('//' step)+
    step       := (name | '*') predicate?
    predicate  := '[' boolexpr ']'
    boolexpr   := about (('and' | 'or') about)*   # one operator kind
                | '(' boolexpr ')' …              # parenthesized mix
    about      := 'about' '(' relpath ',' termlist ')'
    relpath    := '.' ('//' name)*
    termlist   := (word | '"phrase words"')+

Content-only queries (plain keyword lists, the INEX "CO" topics) parse
to a single ``//*`` step with one about clause over ``.``.

Mixed ``and``/``or`` at one level requires parentheses (as in NEXI).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QuerySyntaxError
from repro.nexi.ast import AboutClause, BoolOp, NexiPath, NexiStep, Predicate

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<dslash>//)
  | (?P<phrase>"[^"]*")
  | (?P<word>[A-Za-z0-9_\-]+)
  | (?P<punct>[\[\]().,*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"about", "and", "or"}


def _tokenize(source: str) -> Tuple[List[Tuple[str, str]], List[int]]:
    """Tokenize; returns the token list plus each token's 1-based column
    (NEXI queries are single-line, so errors report column only)."""
    tokens: List[Tuple[str, str]] = []
    cols: List[int] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise QuerySyntaxError(
                f"unexpected character {source[pos]!r} in NEXI query",
                line=1, column=pos + 1,
            )
        kind = m.lastgroup
        text = m.group(0)
        if kind != "ws":
            if kind == "word" and text in _KEYWORDS:
                tokens.append(("kw", text))
            elif kind == "phrase":
                tokens.append(("phrase", text[1:-1]))
            else:
                tokens.append((kind, text))  # type: ignore[arg-type]
            cols.append(pos + 1)
        pos = m.end()
    tokens.append(("eof", ""))
    cols.append(len(source) + 1)
    return tokens, cols


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], cols: List[int]):
        self.tokens = tokens
        self.cols = cols
        self.i = 0

    def column(self) -> int:
        return self.cols[self.i]

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.i]

    def advance(self) -> Tuple[str, str]:
        tok = self.tokens[self.i]
        if tok[0] != "eof":
            self.i += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.peek()
        if k != kind or (value is not None and v != value):
            raise QuerySyntaxError(
                f"expected {value or kind!r}, found {v!r} in NEXI query",
                line=1, column=self.column(),
            )
        self.advance()
        return v

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        k, v = self.peek()
        return k == kind and (value is None or v == value)

    # ------------------------------------------------------------------

    def parse(self) -> NexiPath:
        if self.at("dslash"):
            return self.parse_cas()
        return self.parse_co()

    def parse_co(self) -> NexiPath:
        # Content-only: keywords like "and" are ordinary terms here.
        phrases = self.parse_termlist(allow_keywords=True)
        if not phrases:
            raise QuerySyntaxError("empty NEXI query")
        self.expect("eof")
        about = AboutClause(relative=(), phrases=tuple(phrases))
        return NexiPath((NexiStep("*", about),))

    def parse_cas(self) -> NexiPath:
        steps: List[NexiStep] = []
        while self.at("dslash"):
            self.advance()
            if self.at("punct", "*"):
                self.advance()
                tag = "*"
            else:
                tag = self.expect("word")
            predicate: Optional[Predicate] = None
            if self.at("punct", "["):
                self.advance()
                predicate = self.parse_boolexpr()
                self.expect("punct", "]")
            steps.append(NexiStep(tag, predicate))
        self.expect("eof")
        if not steps:
            raise QuerySyntaxError("NEXI path needs at least one step")
        return NexiPath(tuple(steps))

    def parse_boolexpr(self) -> Predicate:
        operands: List[Predicate] = [self.parse_atom()]
        op: Optional[str] = None
        while self.at("kw", "and") or self.at("kw", "or"):
            this_op = self.advance()[1]
            if op is None:
                op = this_op
            elif op != this_op:
                raise QuerySyntaxError(
                    "mixed and/or needs parentheses in NEXI",
                    line=1, column=self.column(),
                )
            operands.append(self.parse_atom())
        if op is None:
            return operands[0]
        return BoolOp(op, tuple(operands))

    def parse_atom(self) -> Predicate:
        if self.at("punct", "("):
            self.advance()
            inner = self.parse_boolexpr()
            self.expect("punct", ")")
            return inner
        return self.parse_about()

    def parse_about(self) -> AboutClause:
        self.expect("kw", "about")
        self.expect("punct", "(")
        relative = self.parse_relpath()
        self.expect("punct", ",")
        phrases = self.parse_termlist()
        if not phrases:
            raise QuerySyntaxError("about() needs at least one term")
        self.expect("punct", ")")
        return AboutClause(tuple(relative), tuple(phrases))

    def parse_relpath(self) -> List[str]:
        self.expect("punct", ".")
        tags: List[str] = []
        while self.at("dslash"):
            self.advance()
            tags.append(self.expect("word"))
        return tags

    def parse_termlist(self, allow_keywords: bool = False) -> List[str]:
        phrases: List[str] = []
        while True:
            k, v = self.peek()
            if k == "phrase":
                phrases.append(v)
                self.advance()
            elif k == "word":
                phrases.append(v)
                self.advance()
            elif allow_keywords and k == "kw":
                phrases.append(v)
                self.advance()
            else:
                return phrases


def parse_nexi(source: str) -> NexiPath:
    """Parse a NEXI query string."""
    tokens, cols = _tokenize(source)
    return _Parser(tokens, cols).parse()
