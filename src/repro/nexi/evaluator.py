"""NEXI evaluation on the TIX machinery.

Pipeline:

1. **Structure**: the query's tag path becomes a linear AD twig; full
   path matches come from :func:`repro.joins.twig.path_stack` (wildcard
   steps stream every element).
2. **Relevance**: every step's ``about`` predicate scores the bound
   element — the clause's relative path descends from it, and the terms
   are scored over subtree text with the paper's weighted phrase counts
   (first phrase 0.8, the rest 0.6, matching ScoreFoo).  A relative path
   matching several descendants contributes the best one.
3. **Combination**: ``and`` sums its operands but zeroes out when any
   operand is zero (strict conjunctive filtering with graded scores);
   ``or`` takes the max.  A path match's score is the sum over all its
   steps' predicate scores; a *target* element's final score is the max
   over the path matches that end at it.
4. **Ranking**: descending score, zero-scored targets dropped, optional
   top-k.

These combination choices are documented ones among NEXI's deliberately
"vague" interpretations; they are the common strict-CAS reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scoring import WeightedCountScorer
from repro.joins.twig import TwigNode, path_stack
from repro.nexi.ast import AboutClause, NexiPath, Predicate
from repro.nexi.parser import parse_nexi
from repro.xmldb.document import Document
from repro.xmldb.store import XMLStore


@dataclass(frozen=True)
class NexiHit:
    """One ranked retrieval unit."""

    doc_id: int
    node_id: int
    score: float


def _about_scorer(phrases: Sequence[str]) -> WeightedCountScorer:
    """The paper's ScoreFoo weighting applied to a NEXI term list: the
    first phrase is primary (0.8), the rest secondary (0.6)."""
    return WeightedCountScorer(
        primary=[phrases[0]], secondary=list(phrases[1:])
    )


class NexiEvaluator:
    """Evaluates parsed NEXI queries against one store."""

    def __init__(self, store: XMLStore):
        self.store = store
        # (id(clause), doc, node) -> score memo: the same about clause is
        # evaluated for every path match binding the same element.
        self._about_memo: Dict[Tuple[int, int, int], float] = {}
        self._scorers: Dict[int, WeightedCountScorer] = {}

    # ------------------------------------------------------------------
    # Relevance
    # ------------------------------------------------------------------

    def _relative_nodes(self, doc: Document, node_id: int,
                        relative: Tuple[str, ...]) -> List[int]:
        """Elements reached by descending ``relative`` tags from
        ``node_id`` (any depth per step, as NEXI's ``.//`` means)."""
        current = [node_id]
        for tag in relative:
            nxt: List[int] = []
            for nid in current:
                nxt.extend(
                    d for d in doc.descendants(nid)
                    if doc.tags[d] == tag
                )
            current = nxt
        return current

    def score_about(self, clause: AboutClause, doc: Document,
                    node_id: int) -> float:
        key = (id(clause), doc.doc_id, node_id)
        memo = self._about_memo.get(key)
        if memo is not None:
            return memo
        scorer = self._scorers.get(id(clause))
        if scorer is None:
            scorer = _about_scorer(clause.phrases)
            self._scorers[id(clause)] = scorer
        best = 0.0
        for target in self._relative_nodes(doc, node_id, clause.relative):
            s = scorer.score_words(doc.subtree_words(target))
            if s > best:
                best = s
        self._about_memo[key] = best
        return best

    def score_predicate(self, predicate: Predicate, doc: Document,
                        node_id: int) -> float:
        if isinstance(predicate, AboutClause):
            return self.score_about(predicate, doc, node_id)
        scores = [
            self.score_predicate(op, doc, node_id)
            for op in predicate.operands
        ]
        if predicate.op == "and":
            return sum(scores) if all(s > 0 for s in scores) else 0.0
        return max(scores)

    # ------------------------------------------------------------------
    # Full query
    # ------------------------------------------------------------------

    def evaluate(self, query: NexiPath,
                 top_k: Optional[int] = None) -> List[NexiHit]:
        steps = query.steps
        twig_nodes = [
            TwigNode(f"${i}", step.tag) for i, step in enumerate(steps)
        ]
        for parent, child in zip(twig_nodes, twig_nodes[1:]):
            parent.add_child(child)
        matches = path_stack(self.store, twig_nodes)

        target_label = f"${len(steps) - 1}"
        if all(step.predicate is None for step in steps):
            # Purely structural query: every target matches, unranked.
            seen = {match[target_label] for match in matches}
            return sorted(
                (NexiHit(d, n, 0.0) for d, n in seen),
                key=lambda h: (h.doc_id, h.node_id),
            )[: top_k if top_k is not None else None]
        best: Dict[Tuple[int, int], float] = {}
        for match in matches:
            score = 0.0
            dead = False
            doc = self.store.document(match[target_label][0])
            for i, step in enumerate(steps):
                if step.predicate is None:
                    continue
                _d, node_id = match[f"${i}"]
                s = self.score_predicate(step.predicate, doc, node_id)
                if s <= 0.0:
                    dead = True
                    break
                score += s
            if dead:
                continue
            key = match[target_label]
            if score > best.get(key, -1.0):
                best[key] = score

        hits = [
            NexiHit(doc_id, node_id, score)
            for (doc_id, node_id), score in best.items()
            if score > 0.0
        ]
        hits.sort(key=lambda h: (-h.score, h.doc_id, h.node_id))
        if top_k is not None:
            hits = hits[:top_k]
        return hits


def evaluate_nexi(store: XMLStore, query: NexiPath,
                  top_k: Optional[int] = None) -> List[NexiHit]:
    """Evaluate a parsed NEXI query."""
    return NexiEvaluator(store).evaluate(query, top_k)


def run_nexi(store: XMLStore, source: str,
             top_k: Optional[int] = None) -> List[NexiHit]:
    """Parse and evaluate a NEXI query string."""
    return evaluate_nexi(store, parse_nexi(source), top_k)
