"""The paper's running example (Figure 1): ``articles.xml`` and
``reviews.xml``.

The paper elides irrelevant text as "..."; we keep those spots empty so
they contribute no query-term occurrences and the figure scores reproduce
exactly.  Node identifiers #a1..#a20 / #r1..#r12 from the paper map to the
document-order element ids of the parsed documents (0-based: #a1 = node 0).

Also provides the Figure 3 / Figure 4 scored pattern trees and the
Figure 9 user functions, shared by the examples and the
figure-reproduction integration tests.
"""

from __future__ import annotations


from repro.core.pattern import (
    Combine,
    EdgeType,
    FromLabel,
    JoinScore,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.pick import PickCriterion
from repro.core.scoring import WeightedCountScorer, score_bar, score_sim
from repro.xmldb.store import XMLStore

ARTICLES_XML = """\
<article>
  <article-title>Internet Technologies</article-title>
  <author id="first">
    <fname>Jane</fname>
    <sname>Doe</sname>
  </author>
  <chapter>
    <ct>Caching and Replication</ct>
  </chapter>
  <chapter>
    <ct>Streaming Video</ct>
  </chapter>
  <chapter>
    <ct>Search and Retrieval</ct>
    <section>
      <section-title>Search Engine Basics</section-title>
    </section>
    <section>
      <section-title>Information Retrieval Techniques</section-title>
    </section>
    <section>
      <section-title>Examples</section-title>
      <p>Here are some IR based search engines:</p>
      <p>search engine NewsInEssence uses a new information retrieval
         technology</p>
      <p>semantic information retrieval techniques are also being
         incorporated into some search engines</p>
    </section>
  </chapter>
</article>
"""

REVIEWS_XML = """\
<reviews>
  <review id="1">
    <title>Internet Technologies</title>
    <reviewer>
      <fname>John</fname>
      <sname>Doe</sname>
    </reviewer>
    <comments>a thorough treatment</comments>
    <rating>5</rating>
  </review>
  <review id="2">
    <title>WWW Technologies</title>
    <reviewer>Anonymous</reviewer>
    <comments>somewhat dated</comments>
    <rating>3</rating>
  </review>
</reviews>
"""

#: Paper node ids (#aN) → document-order element ids in ARTICLES_XML.
#: The paper numbers elements #a1..#a20 in document order, so #aN is
#: element N-1.
A = {n: n - 1 for n in range(1, 21)}


def example_store() -> XMLStore:
    """A store loaded with the Figure 1 documents."""
    return XMLStore.from_sources(
        {"articles.xml": ARTICLES_XML, "reviews.xml": REVIEWS_XML}
    )


def score_foo() -> WeightedCountScorer:
    """Figure 9's ``ScoreFoo``: 0.8 per "search engine" occurrence, 0.6
    per "internet" / "information retrieval" occurrence, with the light
    plural stemming the paper's example scores imply."""
    return WeightedCountScorer(
        primary=["search engine"],
        secondary=["internet", "information retrieval"],
        stem=True,
    )


def query1_pattern() -> ScoredPatternTree:
    """Query 1 (Figure 2): document components of articles.xml scored by
    ScoreFoo — a single-node IR pattern under the article."""
    p1 = PatternNode("$1", tag="article")
    p1.add_child(PatternNode("$4"), EdgeType.ADS)
    return ScoredPatternTree(
        p1,
        scoring={
            "$4": PhraseScore(score_foo()),
            "$1": FromLabel("$4"),
        },
    )


def query2_pattern() -> ScoredPatternTree:
    """The Figure 3 scored pattern tree for Query 2."""
    p1 = PatternNode("$1", tag="article")
    p2 = p1.add_child(PatternNode("$2", tag="author"), EdgeType.AD)
    p2.add_child(
        PatternNode(
            "$3", tag="sname",
            predicate=lambda n: n.alltext() == "doe",
        ),
        EdgeType.PC,
    )
    p1.add_child(PatternNode("$4"), EdgeType.ADS)
    return ScoredPatternTree(
        p1,
        scoring={
            "$4": PhraseScore(score_foo()),
            "$1": FromLabel("$4"),
        },
    )


def query3_pattern() -> ScoredPatternTree:
    """The Figure 4 scored pattern tree for Query 3 (IR-style join).

    ``$1`` is the ``tix_prod_root`` over an article ``$2`` and a review
    ``$7``; the join condition similarity between article title ``$3``
    and review title ``$8`` is scored into ``$joinScore`` and combined
    with the content score of ``$6`` by ``ScoreBar``.
    """
    p1 = PatternNode("$1", tag="tix_prod_root")
    p2 = p1.add_child(PatternNode("$2", tag="article"), EdgeType.AD)
    p2.add_child(PatternNode("$3", tag="article-title"), EdgeType.PC)
    p4 = p2.add_child(PatternNode("$4", tag="author"), EdgeType.AD)
    p4.add_child(
        PatternNode(
            "$5", tag="sname",
            predicate=lambda n: n.alltext() == "doe",
        ),
        EdgeType.PC,
    )
    p2.add_child(PatternNode("$6"), EdgeType.ADS)
    p7 = p1.add_child(PatternNode("$7", tag="review"), EdgeType.AD)
    p7.add_child(PatternNode("$8", tag="title"), EdgeType.PC)
    return ScoredPatternTree(
        p1,
        scoring={
            "$6": PhraseScore(score_fooprime()),
            "$2": FromLabel("$6"),
            "$joinScore": JoinScore(score_sim, "$3", "$8"),
            "$1": Combine(score_bar, ["$joinScore", "$6"]),
        },
    )


def score_fooprime() -> WeightedCountScorer:
    """Alias of :func:`score_foo` for the Query 3 pattern ($6)."""
    return score_foo()


def pickfoo_criterion() -> PickCriterion:
    """Figure 9's ``PickFoo``: relevance threshold 0.8, qualification 50%."""
    return PickCriterion(relevance_threshold=0.8, qualification=0.5)
