"""Resource governance, cancellation, and fault tolerance.

Three cooperating pieces (see ``docs/robustness.md``):

- :mod:`repro.resilience.guard` — :class:`QueryGuard` (wall-clock
  deadline, row/materialization budgets, cooperative
  :class:`CancellationToken`), installed per-thread (so the batch
  executor's workers don't cross-contaminate) and ticked by the engine
  and the access-method merge loops;
- :mod:`repro.resilience.run` — :func:`execute_guarded` /
  :func:`run_query_guarded` / :func:`evaluate_guarded`, the executors
  that enforce budgets at the sink and implement *degrade* mode (partial
  results flagged truncated instead of an exception);
- :mod:`repro.resilience.faultinject` — deterministic, seed-driven fault
  injection at named points in the store/index/persistence paths, plus
  :func:`retry`, the transient-I/O backoff helper.

Hot-path contract: the module-level :data:`~repro.resilience.guard.GUARD`
and :data:`~repro.resilience.faultinject.INJECTOR` are inert null objects
by default; instrumented loops pay one hoisted boolean test per
iteration when nothing is installed.
"""

from repro.resilience.guard import (
    GUARD,
    CancellationToken,
    NullGuard,
    QueryGuard,
    current_guard,
    guarded,
    install_guard,
    uninstall_guard,
)
from repro.resilience.faultinject import (
    INJECTOR,
    FaultInjector,
    FaultSpec,
    NullInjector,
    injecting,
    install_faults,
    retry,
    uninstall_faults,
)
from repro.resilience.run import (
    GuardedResult,
    evaluate_guarded,
    execute_guarded,
    run_query_guarded,
)

__all__ = [
    "GUARD", "CancellationToken", "NullGuard", "QueryGuard",
    "current_guard", "guarded", "install_guard", "uninstall_guard",
    "INJECTOR", "FaultInjector", "FaultSpec", "NullInjector",
    "injecting", "install_faults", "retry", "uninstall_faults",
    "GuardedResult", "evaluate_guarded", "execute_guarded",
    "run_query_guarded",
]
