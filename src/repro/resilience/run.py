"""Guarded query execution: drain a plan (or run a query string) under a
:class:`~repro.resilience.guard.QueryGuard`.

This is the layer that gives the guard's ``degrade`` flag its meaning:
trip exceptions raised deep inside operators or access-method merge
loops are caught here, the pipeline is closed cleanly, and the rows
already produced come back as a :class:`GuardedResult` flagged
``truncated`` — callers always get a well-formed result object instead
of a half-drained iterator.  In strict mode (``degrade=False``) the trip
propagates after cleanup.

Engine imports are deliberately lazy (inside the functions): the engine
itself imports :mod:`repro.resilience.guard` for its hot-loop checks, so
this module must not import the engine at module scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, List, Optional

from repro import obs as _obs
from repro.errors import QueryAbortedError, ResourceExhaustedError
from repro.obs import events as _events
from repro.resilience.guard import (
    NullGuard,
    QueryGuard,
    install_guard,
    uninstall_guard,
)

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.xmldb.store import XMLStore

__all__ = [
    "GuardedResult", "evaluate_guarded", "execute_guarded",
    "run_query_guarded",
]


@dataclass
class GuardedResult:
    """The outcome of one guarded execution.

    ``results`` is always a well-formed (possibly empty) list of scored
    trees.  ``truncated`` is ``True`` when a degrade-mode guard tripped;
    ``reason`` then carries the trip message and ``error`` the trip
    exception instance.  The results of a truncated run are exactly the
    prefix the pipeline emitted before the trip — for ranked plans
    (Sort/TopK sinks) that prefix is correctly ranked.
    """

    results: List[object] = field(default_factory=list)
    truncated: bool = False
    reason: str = ""
    error: Optional[QueryAbortedError] = None

    @property
    def n_results(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[object]:
        return iter(self.results)


def execute_guarded(plan: Any, guard: NullGuard) -> GuardedResult:
    """Open, drain, and close ``plan`` under ``guard``.

    The guard is installed for the duration (engine ``next()`` loops and
    access-method merge loops tick it); the output-row budget is enforced
    here at the sink — the plan is aborted *before* computing the row
    past the budget, so a run that trips on the budget still returns
    exactly ``max_rows`` rows in degrade mode.
    """
    out: List[object] = []
    trip: Optional[QueryAbortedError] = None
    max_rows = getattr(guard, "max_rows", None)
    # One span over the whole drain: the operators' own open/close
    # spans nest under it (same thread), so a request trace reads
    # guard execution → per-operator tree.
    span = _obs.RECORDER.begin_span("execute.guarded")
    install_guard(guard)
    opened = False
    try:
        try:
            plan.open()
            opened = True
            while True:
                if max_rows is not None and len(out) >= max_rows:
                    guard.trip_rows()
                item = plan.next()
                if item is None:
                    break
                out.append(item)
                if guard.active:
                    guard.count_row()
        except QueryAbortedError as exc:
            trip = exc
        finally:
            if opened:
                try:
                    plan.close()
                except Exception:
                    pass  # the trip (or success path) wins
            if isinstance(guard, QueryGuard):
                guard.publish()
    finally:
        uninstall_guard()
        _obs.RECORDER.end_span(span)
    if _obs.RECORDER.enabled:
        from repro.plan.estimate import publish_qerrors

        publish_qerrors(plan)
    ev = _events.current_event()
    if ev is not None:
        ev.note_guard(guard)
        ev.note_plan(plan)
    if trip is not None:
        if not guard.degrade:
            raise trip
        return GuardedResult(
            out, truncated=True, reason=str(trip), error=trip
        )
    return GuardedResult(out)


def run_query_guarded(store: "XMLStore", source: str, guard: NullGuard,
                      registry: "Optional[MetricsRegistry]" = None,
                      **planner_opts: Any) -> GuardedResult:
    """Parse, compile, and execute a query string under ``guard``.

    Compilable queries run on the pipelined engine via
    :func:`execute_guarded` (streaming enforcement).  Queries outside the
    compilable shape fall back to the reference evaluator with the guard
    installed — access-method ticks still bound its runtime, but the row
    budget can only be applied to the finished result list (the evaluator
    is not streaming): over-budget results raise in strict mode and are
    trimmed + flagged truncated in degrade mode.

    Keyword options (``planner=``, ``force_ops=``, ``corrections=``)
    are forwarded to :func:`~repro.query.compiler.compile_query`.
    """
    from repro.errors import PlannerHintError, QueryCompileError
    from repro.query import parse_query
    from repro.query.compiler import compile_query

    rec = _obs.RECORDER
    with _events.observe_query(source) as ev:
        with rec.span("parse"):
            query = parse_query(source)
        try:
            # compile_query opens its own "compile" span.
            plan = compile_query(store, query, registry, **planner_opts)
        except PlannerHintError:
            raise  # a bad hint must surface, not change strategy
        except QueryCompileError:
            plan = None
        if plan is not None:
            res = execute_guarded(plan, guard)
        else:
            res = evaluate_guarded(store, query, guard, registry)
        if ev is not None:
            ev.note_result(res.n_results, res.truncated, res.reason)
            if res.error is not None and not ev.guard_trip:
                # Evaluator-fallback trims never fire guard._trip, so
                # the verdict comes from the result's error instead.
                ev.guard_trip = type(res.error).__name__
        return res


def evaluate_guarded(store: "XMLStore", query: Any, guard: NullGuard,
                     registry: "Optional[MetricsRegistry]" = None,
                     ) -> GuardedResult:
    """Run a *parsed* query on the reference evaluator under ``guard``.

    The fallback half of :func:`run_query_guarded`, split out so callers
    that cache parsed queries (:class:`repro.perf.querycache.QueryCache`)
    can reuse it without re-parsing.  The evaluator is not streaming, so
    the row budget applies to the finished result list: over-budget
    results raise in strict mode and are trimmed + flagged truncated in
    degrade mode.
    """
    from repro.query.evaluator import evaluate_query

    span = _obs.RECORDER.begin_span("execute.evaluate")
    install_guard(guard)
    try:
        try:
            # Explicit ticks bracket the evaluator: an already-expired
            # deadline (or cancelled token) trips immediately even when
            # the store is too small for any strided hot-loop check to
            # fire inside.
            if guard.active:
                guard.tick()
            results = evaluate_query(store, query, registry)
            if guard.active:
                guard.tick()
                for _ in results:
                    guard.count_row()
        except QueryAbortedError as exc:
            if not guard.degrade:
                raise
            return GuardedResult(
                [], truncated=True, reason=str(exc), error=exc
            )
        finally:
            ev = _events.current_event()
            if ev is not None:
                ev.note_guard(guard)
            if isinstance(guard, QueryGuard):
                guard.publish()
    finally:
        uninstall_guard()
        _obs.RECORDER.end_span(span)
    max_rows = getattr(guard, "max_rows", None)
    if max_rows is not None and len(results) > max_rows:
        exc = ResourceExhaustedError(
            f"query exceeded its row budget of {max_rows}"
        )
        if not guard.degrade:
            raise exc
        return GuardedResult(
            results[:max_rows], truncated=True, reason=str(exc), error=exc
        )
    return GuardedResult(results)
