"""Deterministic, seed-driven fault injection + retry-with-backoff.

Production code in the store/index/persistence paths declares *named
fault points* by calling ``faultinject.INJECTOR.fire("persist.read_doc",
path=path)`` at the spot where a real deployment could fail (disk read,
rename, decode).  The default :data:`INJECTOR` is a :class:`NullInjector`
whose ``fire`` is a no-op, so the hooks cost one method call on cold
paths and nothing is ever injected outside tests.

The chaos suite installs a :class:`FaultInjector` built from
:class:`FaultSpec`\\ s.  Faults trigger either *deterministically* (the
``at_calls`` ordinals of a point, 1-based) or *probabilistically* from a
seeded :class:`random.Random` — same seed, same spec, same call sequence
⇒ same faults, every run.  ``times`` caps how often a spec fires, which
models transient errors (fail once, succeed on retry).

The point names in play are declared in :data:`FAULT_POINTS` (see also
``docs/robustness.md``); the ``fault-point-drift`` lint rule keeps that
registry and the ``fire()`` sites in agreement, both ways.

:func:`retry` is the matching transient-I/O helper: call, catch
retryable errors, back off (deterministic exponential, or seedable
decorrelated jitter for client fleets), re-raise after ``attempts``.
Retries and give-ups are recorded as ``resilience.retries`` /
``resilience.retry_giveups`` counters when a collector is installed.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import sleep as _real_sleep
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs as _obs

__all__ = [
    "FAULT_POINTS", "FaultSpec", "NullInjector", "FaultInjector",
    "INJECTOR", "install_faults", "uninstall_faults", "injecting",
    "retry",
]

#: The declared fault-point registry: name -> the operation the point
#: precedes.  Must stay a literal dict — the ``fault-point-drift`` lint
#: rule reads it with ``ast.literal_eval`` and checks every
#: ``INJECTOR.fire(...)`` site against it (and that every entry here is
#: still reachable), so a point cannot be added, renamed, or dropped
#: without updating this table.
FAULT_POINTS: Dict[str, str] = {
    "persist.read_manifest": "reading store.json",
    "persist.write_manifest": "atomically writing store.json",
    "persist.read_doc": "reading one document file",
    "persist.write_doc": "atomically writing one document file",
    "persist.replace": "the tmp-to-final os.replace",
    "index.build": "building the inverted index",
    "store.parse_doc": "parsing one loaded document",
    "server.accept": "accepting one client connection",
    "server.frame_read": "reading one wire-protocol frame",
    "server.frame_write": "writing one wire-protocol frame",
}


@dataclass
class FaultSpec:
    """One fault rule: *where* it can fire and *when* it does.

    ``make_error`` builds the exception to raise (default: an ``OSError``
    naming the point and any context the fault site passed).  ``at_calls``
    fires on exact 1-based call ordinals of the point; ``probability``
    fires from the injector's seeded RNG; ``times`` caps total fires
    (``None`` = unlimited) — ``times=1`` models a transient error that a
    retry survives.
    """

    point: str
    probability: float = 0.0
    at_calls: Tuple[int, ...] = ()
    times: Optional[int] = None
    make_error: Optional[Callable[..., BaseException]] = None
    fired: int = field(default=0, compare=False)

    def build_error(self, **ctx: object) -> BaseException:
        if self.make_error is not None:
            return self.make_error(**ctx)
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(ctx.items()))
        return OSError(
            f"injected fault at {self.point}"
            + (f" ({detail})" if detail else "")
        )


class NullInjector:
    """The default injector: never fires."""

    active = False

    def fire(self, point: str, **ctx: object) -> None:
        pass


class FaultInjector(NullInjector):
    """Seeded fault oracle for a set of :class:`FaultSpec` rules."""

    active = True

    def __init__(self, specs: Sequence[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.rng = random.Random(seed)
        #: per-point call ordinals (1-based; includes non-firing calls)
        self.calls: Dict[str, int] = {}
        #: per-point count of faults actually raised
        self.fired: Dict[str, int] = {}
        self._by_point: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_point.setdefault(spec.point, []).append(spec)

    def add(self, spec: FaultSpec) -> "FaultInjector":
        self.specs.append(spec)
        self._by_point.setdefault(spec.point, []).append(spec)
        return self

    def fire(self, point: str, **ctx: object) -> None:
        """Raise a fault if any spec for ``point`` triggers on this call."""
        n = self.calls.get(point, 0) + 1
        self.calls[point] = n
        for spec in self._by_point.get(point, ()):
            if spec.times is not None and spec.fired >= spec.times:
                continue
            hit = n in spec.at_calls
            if not hit and spec.probability > 0.0:
                # One RNG draw per (armed spec, call): the draw sequence
                # is a pure function of the seed and the call sequence,
                # so identical scenarios replay identically.
                hit = self.rng.random() < spec.probability
            if hit:
                spec.fired += 1
                self.fired[point] = self.fired.get(point, 0) + 1
                rec = _obs.RECORDER
                if rec.enabled:
                    rec.count(f"faults.fired.{point}")
                raise spec.build_error(point=point, **ctx)


#: The process-wide injector.  Read via module attribute at call time.
INJECTOR: NullInjector = NullInjector()

_stack: List[NullInjector] = []


def install_faults(injector: NullInjector) -> None:
    """Install ``injector``; installs nest like the obs recorder."""
    global INJECTOR
    _stack.append(INJECTOR)
    INJECTOR = injector


def uninstall_faults() -> None:
    global INJECTOR
    if not _stack:
        raise RuntimeError(
            "uninstall_faults() without a matching install_faults()"
        )
    INJECTOR = _stack.pop()


@contextmanager
def injecting(specs: Sequence[FaultSpec] = (),
              seed: int = 0) -> Iterator[FaultInjector]:
    """Install a fresh :class:`FaultInjector` for the duration of the
    block."""
    injector = FaultInjector(specs, seed=seed)
    install_faults(injector)
    try:
        yield injector
    finally:
        uninstall_faults()


def retry(
    fn: Callable[[], object],
    attempts: int = 3,
    base_delay: float = 0.005,
    retryable: Tuple[type, ...] = (OSError,),
    non_retryable: Tuple[type, ...] = (FileNotFoundError,),
    sleep: Callable[[float], None] = _real_sleep,
    jitter: bool = False,
    max_delay: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> object:
    """Call ``fn``, retrying transient failures with backoff.

    A raised error is retried when it is an instance of ``retryable`` but
    not of ``non_retryable`` (a missing file is not transient).  After
    ``attempts`` total calls the last error is re-raised.  ``sleep`` is
    injectable so tests assert the backoff schedule without waiting.

    Two backoff schedules:

    - ``jitter=False`` (default) — deterministic exponential,
      ``base_delay * 2**k`` for retry ``k``.  Right for a single
      process retrying local I/O, where reproducibility matters more
      than herd behaviour.
    - ``jitter=True`` — *decorrelated jitter*: each delay is drawn
      uniformly from ``[base_delay, 3 * previous_delay]``.  Right for
      fleets of clients retrying against one recovering server —
      deterministic exponential backoff keeps a synchronized herd
      synchronized (every client sleeps the same schedule and stampedes
      together), while decorrelated draws spread the re-arrival times.
      Pass a seeded ``rng`` (:class:`random.Random`) to make the
      schedule reproducible for the chaos suite; without one a private
      unseeded RNG is used.

    ``max_delay`` caps a single sleep under either schedule.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if jitter and rng is None:
        rng = random.Random()
    prev_delay = base_delay
    for attempt in range(attempts):
        try:
            return fn()
        except retryable as exc:
            if isinstance(exc, non_retryable) or attempt == attempts - 1:
                rec = _obs.RECORDER
                if rec.enabled and not isinstance(exc, non_retryable):
                    rec.count("resilience.retry_giveups")
                raise
            rec = _obs.RECORDER
            if rec.enabled:
                rec.count("resilience.retries")
            if jitter:
                assert rng is not None
                delay = rng.uniform(base_delay, prev_delay * 3.0)
            else:
                delay = base_delay * (2 ** attempt)
            if max_delay is not None:
                delay = min(delay, max_delay)
            prev_delay = delay
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
