"""Query guard: deadline, budgets, and cooperative cancellation.

A :class:`QueryGuard` carries the resource-governance envelope of one
query execution: an optional wall-clock deadline, an output-row budget,
a materialization budget, and an optional :class:`CancellationToken`.
The engine and the access-method merge loops call :meth:`QueryGuard.tick`
periodically; a trip raises one of

- :class:`~repro.errors.QueryTimeoutError` — deadline exceeded;
- :class:`~repro.errors.ResourceExhaustedError` — budget exceeded;
- :class:`~repro.errors.QueryCancelledError` — token cancelled;

all subclasses of :class:`~repro.errors.QueryAbortedError`.  In *degrade*
mode (``degrade=True``) the same exceptions are raised at the trip site,
but :func:`repro.resilience.run.execute_guarded` catches them, closes the
pipeline cleanly, and returns the rows produced so far flagged truncated
— strict vs. degrade is a property of the guard, decided once by the
caller, not per call site.

Installation follows the :mod:`repro.obs` recorder pattern — **zero
overhead unless governing**.  The module-level :data:`GUARD` is a
:class:`NullGuard` by default (``active`` is ``False``); instrumented
loops hoist ``guard = _resguard.GUARD`` / ``ga = guard.active`` and pay
one local boolean test per iteration when no guard is installed.  Always
read the guard as a module attribute at call time (``_resguard.GUARD``),
never ``from ... import GUARD``.

Installation is **per-thread**: :data:`GUARD` resolves through a module
``__getattr__`` to thread-local state, so the batch executor
(:func:`repro.perf.batch.execute_batch`) can run one guarded query per
worker thread without the guards cross-contaminating — each thread sees
its own guard, and threads with none installed see the shared null
guard.  Within a thread, guards remain cooperative; a
:class:`CancellationToken` may be flipped from any thread — it is a
single attribute write, safe under the GIL.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, List, Optional

from repro import obs as _obs
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)

__all__ = [
    "CancellationToken", "NullGuard", "QueryGuard", "GUARD",
    "install_guard", "uninstall_guard", "guarded", "current_guard",
]


class CancellationToken:
    """Cooperative cancellation flag.  ``cancel()`` may be called from any
    thread; guarded loops observe it at their next tick."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self._cancelled})"


class NullGuard:
    """The default guard: inactive, every method a no-op.  Hot loops test
    ``active`` once (hoisted) and skip all governance work."""

    active = False
    degrade = False

    def tick(self, n: int = 1) -> None:
        pass

    def count_materialized(self, n: int = 1) -> None:
        pass


class QueryGuard(NullGuard):
    """One query's resource-governance envelope.

    :param timeout_ms: wall-clock deadline in milliseconds from guard
        creation (``None`` = unbounded);
    :param max_rows: output-row budget, enforced by
        :func:`~repro.resilience.run.execute_guarded` at the sink — the
        plan is aborted before computing row ``max_rows + 1``;
    :param max_materialized: budget on stored subtrees materialized by
        the plan's operators;
    :param token: optional cooperative :class:`CancellationToken`;
    :param degrade: on a trip, return partial results flagged truncated
        instead of failing (honoured by the guarded executors; the trip
        exception is still raised at the trip site).
    """

    active = True

    __slots__ = (
        "timeout_ms", "max_rows", "max_materialized", "token", "degrade",
        "deadline", "checks", "rows", "materialized", "tripped",
    )

    def __init__(self, timeout_ms: Optional[float] = None,
                 max_rows: Optional[int] = None,
                 max_materialized: Optional[int] = None,
                 token: Optional[CancellationToken] = None,
                 degrade: bool = False) -> None:
        if timeout_ms is not None and timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")
        if max_rows is not None and max_rows < 0:
            raise ValueError("max_rows must be >= 0")
        if max_materialized is not None and max_materialized < 0:
            raise ValueError("max_materialized must be >= 0")
        self.timeout_ms = timeout_ms
        self.max_rows = max_rows
        self.max_materialized = max_materialized
        self.token = token
        self.degrade = degrade
        self.deadline = (
            perf_counter() + timeout_ms / 1000.0
            if timeout_ms is not None else None
        )
        self.checks = 0
        self.rows = 0
        self.materialized = 0
        #: the exception instance of the first trip, if any (degrade-mode
        #: executors read it to report *why* results are truncated)
        self.tripped = None  # type: Optional[BaseException]

    # -- trip sites --------------------------------------------------------

    def _trip(self, exc: BaseException, kind: str) -> None:
        if self.tripped is None:
            self.tripped = exc
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count(f"guard.trips.{kind}")
        raise exc

    def tick(self, n: int = 1) -> None:
        """Record ``n`` units of progress and check deadline/cancellation.
        Hot loops call this every few hundred iterations (passing the
        stride as ``n``), the engine once per ``Operator.next()``."""
        self.checks += n
        token = self.token
        if token is not None and token.cancelled:
            self._trip(QueryCancelledError("query cancelled"), "cancelled")
        if self.deadline is not None and perf_counter() > self.deadline:
            self._trip(
                QueryTimeoutError(
                    f"query exceeded its {self.timeout_ms:g} ms deadline"
                ),
                "timeout",
            )

    def count_row(self) -> None:
        """Account one emitted result row (sink-side bookkeeping)."""
        self.rows += 1

    def trip_rows(self) -> None:
        self._trip(
            ResourceExhaustedError(
                f"query exceeded its row budget of {self.max_rows}"
            ),
            "rows",
        )

    def count_materialized(self, n: int = 1) -> None:
        """Account ``n`` stored subtrees materialized by plan operators;
        trips when the materialization budget is exceeded."""
        self.materialized += n
        if (self.max_materialized is not None
                and self.materialized > self.max_materialized):
            self._trip(
                ResourceExhaustedError(
                    "query exceeded its materialization budget of "
                    f"{self.max_materialized}"
                ),
                "materialized",
            )

    # -- reporting ---------------------------------------------------------

    @property
    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (negative when past it)."""
        if self.deadline is None:
            return None
        return (self.deadline - perf_counter()) * 1000.0

    def publish(self) -> None:
        """Mirror cumulative guard accounting into the observability
        registry (no-op with no collector) — the guarded executors call
        this once per run so ``guard.*`` metrics appear next to the
        EXPLAIN ANALYZE output."""
        rec = _obs.RECORDER
        if not rec.enabled:
            return
        rec.count("guard.checks", self.checks)
        rec.count("guard.rows", self.rows)
        if self.materialized:
            rec.count("guard.materialized", self.materialized)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryGuard(timeout_ms={self.timeout_ms}, "
            f"max_rows={self.max_rows}, "
            f"max_materialized={self.max_materialized}, "
            f"degrade={self.degrade})"
        )


#: Shared inactive guard: what every thread sees until it installs one.
_NULL_GUARD = NullGuard()


class _GuardState(threading.local):
    """Per-thread installed guard + nesting stack.  ``threading.local``
    runs ``__init__`` afresh in every thread that touches the state, so
    worker threads start at the null guard with an empty stack."""

    def __init__(self) -> None:
        self.guard: NullGuard = _NULL_GUARD
        self.stack: List[NullGuard] = []


_STATE = _GuardState()


def __getattr__(name: str) -> NullGuard:
    # ``GUARD`` is documented as a module attribute (hot loops read
    # ``_resguard.GUARD``); this resolves it per-thread without changing
    # a single call site.
    if name == "GUARD":
        return _STATE.guard
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def current_guard() -> NullGuard:
    """The guard installed in the calling thread (null by default)."""
    return _STATE.guard


def install_guard(guard: NullGuard) -> None:
    """Install ``guard`` as the calling thread's active guard.  Installs
    nest: :func:`uninstall_guard` restores the previously active guard."""
    _STATE.stack.append(_STATE.guard)
    _STATE.guard = guard


def uninstall_guard() -> None:
    """Restore the guard active before the last :func:`install_guard`
    in this thread."""
    if not _STATE.stack:
        raise RuntimeError(
            "uninstall_guard() without a matching install_guard()"
        )
    _STATE.guard = _STATE.stack.pop()


@contextmanager
def guarded(guard: NullGuard) -> Iterator[NullGuard]:
    """Install ``guard`` for the duration of the block."""
    install_guard(guard)
    try:
        yield guard
    finally:
        uninstall_guard()
