"""Scored data trees.

A scored data tree (Definition 1) is a rooted ordered tree whose nodes
carry attribute-value pairs including at least a ``tag`` and a real-valued
``score``; the score of the tree is the score of its root.  Unscored trees
are scored trees whose scores are all ``None`` (null).

:class:`SNode` is one node; :class:`STree` wraps a root and caches a
preorder numbering used to rebuild hierarchical relationships among
arbitrary node subsets (witness-tree construction in selection and
projection).

Nodes remember their provenance: ``source = (doc_id, node_id)`` when the
node mirrors a stored element, or ``None`` for constructed nodes such as
``tix_prod_root``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.xmldb.document import Document
from repro.xmldb.text import escape_attr, escape_text, tokenize_text


class SNode:
    """One node of a scored data tree."""

    __slots__ = (
        "tag", "attrs", "score", "source", "children",
        "words", "labels", "order_start", "order_end",
    )

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        score: Optional[float] = None,
        source: Optional[Tuple[int, int]] = None,
        words: Optional[List[str]] = None,
    ):
        self.tag = tag
        self.attrs = attrs or {}
        self.score = score
        self.source = source
        self.children: List[SNode] = []
        #: direct text content, tokenized
        self.words = words or []
        #: pattern labels this node matched (set by selection/projection;
        #: consumed by Threshold and Pick)
        self.labels: set = set()
        # Preorder interval; maintained by STree.renumber().
        self.order_start = -1
        self.order_end = -1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_child(self, child: "SNode") -> "SNode":
        """Append ``child`` and return it (for chaining)."""
        self.children.append(child)
        return child

    def shallow_copy(self) -> "SNode":
        """Copy of this node without children (labels carried over)."""
        clone = SNode(
            tag=self.tag,
            attrs=dict(self.attrs),
            score=self.score,
            source=self.source,
            words=list(self.words),
        )
        clone.labels = set(self.labels)
        return clone

    def deep_copy(self) -> "SNode":
        """Copy of the whole subtree."""
        clone = self.shallow_copy()
        clone.children = [c.deep_copy() for c in self.children]
        return clone

    # ------------------------------------------------------------------
    # Traversal and content
    # ------------------------------------------------------------------

    def preorder(self) -> Iterator["SNode"]:
        """All nodes of the subtree, document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def subtree_words(self) -> List[str]:
        """All words in the subtree (the paper's ``alltext()``)."""
        out: List[str] = []
        for node in self.preorder():
            out.extend(node.words)
        return out

    def alltext(self) -> str:
        """Subtree text as one space-joined string."""
        return " ".join(self.subtree_words())

    def find(self, predicate: Callable[["SNode"], bool]) -> List["SNode"]:
        """All subtree nodes satisfying ``predicate``, document order."""
        return [n for n in self.preorder() if predicate(n)]

    def find_by_tag(self, tag: str) -> List["SNode"]:
        """All subtree nodes with the given tag."""
        return self.find(lambda n: n.tag == tag)

    def n_nodes(self) -> int:
        """Size of the subtree."""
        return sum(1 for _ in self.preorder())

    # ------------------------------------------------------------------
    # Ordering (valid after the owning STree ran renumber())
    # ------------------------------------------------------------------

    def is_ancestor_of(self, other: "SNode") -> bool:
        """Strict ancestor test via the cached preorder interval."""
        return (
            self.order_start < other.order_start
            and other.order_end <= self.order_end
        )

    # ------------------------------------------------------------------
    # Serialization (for examples and debugging)
    # ------------------------------------------------------------------

    def to_xml(self, with_scores: bool = False) -> str:
        """Serialize the subtree to XML.  With ``with_scores`` each scored
        node gets a ``score`` attribute (used by the examples to show the
        paper's bracketed scores)."""
        parts: List[str] = []
        self._to_xml(parts, with_scores)
        return "".join(parts)

    def _to_xml(self, out: List[str], with_scores: bool) -> None:
        attrs = dict(self.attrs)
        if with_scores and self.score is not None:
            attrs["score"] = f"{self.score:g}"
        attr_str = "".join(
            f' {k}="{escape_attr(str(v))}"' for k, v in attrs.items()
        )
        if not self.children and not self.words:
            out.append(f"<{self.tag}{attr_str}/>")
            return
        out.append(f"<{self.tag}{attr_str}>")
        if self.words:
            out.append(escape_text(" ".join(self.words)))
        for child in self.children:
            child._to_xml(out, with_scores)
        out.append(f"</{self.tag}>")

    def sketch(self) -> str:
        """Compact one-line rendering, e.g. ``article[5.6](author(sname))``.

        Mirrors the figures in the paper: scores in brackets, children in
        parentheses.  Used heavily by the figure-reproduction tests.
        """
        label = self.tag
        if self.score is not None:
            label += f"[{self.score:g}]"
        if not self.children:
            return label
        inner = ",".join(c.sketch() for c in self.children)
        return f"{label}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        score = f" score={self.score:g}" if self.score is not None else ""
        src = f" src={self.source}" if self.source else ""
        return f"SNode(<{self.tag}>{score}{src} {len(self.children)} children)"


class STree:
    """A scored data tree: a root node plus cached preorder numbering."""

    def __init__(self, root: SNode):
        self.root = root
        self.renumber()

    @property
    def score(self) -> Optional[float]:
        """Score of the tree = score of its root (Definition 1)."""
        return self.root.score

    def renumber(self) -> None:
        """(Re)assign preorder intervals to every node.  Must be called
        after structural mutation before using ancestor tests.
        Iterative, so arbitrarily deep trees are fine."""
        counter = 1
        self.root.order_start = counter
        stack = [(self.root, iter(self.root.children))]
        while stack:
            node, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                counter += 1
                node.order_end = counter
            else:
                counter += 1
                child.order_start = counter
                stack.append((child, iter(child.children)))

    def nodes(self) -> Iterator[SNode]:
        """All nodes, document order."""
        return self.root.preorder()

    def n_nodes(self) -> int:
        return self.root.n_nodes()

    def deep_copy(self) -> "STree":
        return STree(self.root.deep_copy())

    def to_xml(self, with_scores: bool = False) -> str:
        return self.root.to_xml(with_scores)

    def sketch(self) -> str:
        return self.root.sketch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"STree({self.root.tag}, {self.n_nodes()} nodes, "
                f"score={self.score})")


# ----------------------------------------------------------------------
# Conversion from stored documents
# ----------------------------------------------------------------------

def snode_from_document(doc: Document, node_id: int) -> SNode:
    """Materialize the stored subtree at ``node_id`` as an :class:`SNode`
    tree with provenance links back to the store."""
    node = SNode(
        tag=doc.tags[node_id],
        attrs=dict(doc.attrs.get(node_id, {})),
        source=(doc.doc_id, node_id),
        words=list(doc.direct_words(node_id)),
    )
    for child_id in doc.children(node_id):
        node.add_child(snode_from_document(doc, child_id))
    return node


def tree_from_document(doc: Document, node_id: int = 0) -> STree:
    """Materialize a stored subtree as a full :class:`STree`."""
    return STree(snode_from_document(doc, node_id))


def tree_from_text(tag: str, text: str) -> STree:
    """Build a single-node tree holding tokenized ``text`` (test helper)."""
    return STree(SNode(tag, words=tokenize_text(text)))


def build_minimal_hierarchy(nodes: Sequence[SNode]) -> List[SNode]:
    """Given nodes of one (renumbered) tree, build shallow copies wired to
    preserve their ancestor/descendant relationships, dropping everything
    else — the "witness tree" construction used by scored selection and
    projection.

    Returns the list of roots (nodes with no ancestor within ``nodes``).
    Input order is ignored; output is document order.  Duplicate nodes are
    kept once.
    """
    unique: Dict[int, SNode] = {}
    for n in nodes:
        unique[id(n)] = n
    ordered = sorted(unique.values(),
                     key=lambda n: (n.order_start, -n.order_end))
    roots: List[SNode] = []
    copies: List[SNode] = []
    stack: List[SNode] = []  # originals whose copies are open
    for original in ordered:
        copy = original.shallow_copy()
        copy.order_start = original.order_start
        copy.order_end = original.order_end
        while stack and not stack[-1].is_ancestor_of(original):
            stack.pop()
            copies.pop()
        if stack:
            copies[-1].add_child(copy)
        else:
            roots.append(copy)
        stack.append(original)
        copies.append(copy)
    return roots
