"""Probabilistic-XML scoring (§7's ProTDB connection).

The paper observes that its machinery "can also be applied to the field
of probabilistic data storage and querying, where the probability can be
viewed as the equivalence of the score and be manipulated similarly."
This module provides that adapter for ProTDB-style documents, where
elements carry a ``prob`` attribute giving their existence probability
conditioned on the parent:

- :class:`ProbabilityScore` — a scoring rule assigning each matched node
  its *absolute* existence probability (the product of ``prob`` values
  on its root path; missing attributes mean 1.0);
- :func:`combine_independent` / :func:`combine_mutually_exclusive` —
  the two basic combiners for scores-as-probabilities (noisy-or for
  independent evidence, sum for exclusive alternatives), usable inside
  :class:`~repro.core.pattern.Combine` rules;
- :func:`existence_probability` — the path-product primitive.

Because probabilities are just scores, everything downstream — Threshold,
Pick, ranking — works unchanged: thresholding at probability 0.5, picking
the most probable granularity, and so on.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pattern import NodeScore
from repro.core.trees import SNode, STree

PROB_ATTR = "prob"


def node_probability(node: SNode) -> float:
    """The node's local (conditional) probability from its ``prob``
    attribute; 1.0 when absent; clamped to [0, 1]."""
    raw = node.attrs.get(PROB_ATTR)
    if raw is None:
        return 1.0
    try:
        p = float(raw)
    except (TypeError, ValueError):
        return 1.0
    return min(1.0, max(0.0, p))


def existence_probability(tree: STree, node: SNode) -> float:
    """Absolute existence probability of ``node``: the product of local
    probabilities along the path from the tree root to the node
    (ProTDB's independent-event interpretation)."""
    # Build the root path via the order intervals (ancestors are exactly
    # the nodes whose interval contains the target's).
    tree.renumber()
    p = 1.0
    for candidate in tree.nodes():
        if candidate is node or candidate.is_ancestor_of(node):
            p *= node_probability(candidate)
    return p


class ProbabilityScore(NodeScore):
    """Scoring rule: matched node → absolute existence probability.

    The owning tree is located through the match itself, so the rule
    needs the evaluation context to pass the tree; for simplicity the
    rule recomputes the path product from any ancestor chain available
    via order intervals, given the tree at construction."""

    def __init__(self, tree: STree):
        self.tree = tree

    def evaluate(self, node: SNode) -> float:
        return existence_probability(self.tree, node)


def combine_independent(*probabilities: float) -> float:
    """Noisy-or: probability that at least one independent event holds.
    The natural scored-union combiner for probabilistic data."""
    q = 1.0
    for p in probabilities:
        q *= 1.0 - min(1.0, max(0.0, p))
    return 1.0 - q


def combine_mutually_exclusive(*probabilities: float) -> float:
    """Sum, capped at 1: combiner for mutually exclusive alternatives."""
    return min(1.0, sum(max(0.0, p) for p in probabilities))


def prune_below(tree: STree, threshold: float) -> Optional[STree]:
    """Drop every subtree whose absolute existence probability falls
    below ``threshold`` — the probabilistic analogue of the V-Threshold.
    Returns None when even the root falls below."""
    if node_probability(tree.root) < threshold:
        return None

    def rebuild(node: SNode, prefix: float) -> SNode:
        absolute = prefix * node_probability(node)
        clone = node.shallow_copy()
        clone.score = absolute
        clone.children = [
            rebuild(c, absolute) for c in node.children
            if absolute * node_probability(c) >= threshold
        ]
        return clone

    return STree(rebuild(tree.root, 1.0))
