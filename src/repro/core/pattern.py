"""Scored pattern trees (Definition 2).

A scored pattern tree is a triple ``P = (T, F, S)``:

- ``T``: a tree of labelled pattern nodes whose edges are ``pc``
  (parent-child), ``ad`` (ancestor-descendant) or ``ad*``
  (self-or-descendant);
- ``F``: a boolean formula over the nodes — here decomposed into per-node
  predicates (tag tests, content tests) plus an optional cross-node
  ``formula`` over a whole embedding (this is where join conditions live);
- ``S``: scoring rules for IR-nodes.  A *primary* IR-node carries an
  IR-style predicate (a :class:`PhraseScore`); *secondary* IR-nodes derive
  their scores from other nodes' scores (:class:`FromLabel`,
  :class:`Combine`); :class:`JoinScore` scores an IR-style join condition
  into a temporary variable (the paper's ``$joinScore``).

Example — the pattern of Figure 3 (Query 2)::

    p1 = PatternNode("$1", tag="article")
    p2 = p1.add_child(PatternNode("$2", tag="author"), EdgeType.AD)
    p3 = p2.add_child(PatternNode("$3", tag="sname",
                                  predicate=lambda n: n.alltext() == "Doe"),
                      EdgeType.PC)
    p4 = p1.add_child(PatternNode("$4"), EdgeType.ADS)
    pattern = ScoredPatternTree(p1, scoring={
        "$4": PhraseScore(score_foo),
        "$1": FromLabel("$4"),
    })
"""

from __future__ import annotations

from enum import Enum
from typing import (
    Callable, Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING,
)

from repro.errors import PatternError
from repro.core.trees import SNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.matching import Match
    from repro.core.scoring import ScoringFunction


class EdgeType(Enum):
    """Edge labels of the pattern tree (Definition 2)."""

    PC = "pc"    # parent-child
    AD = "ad"    # ancestor-descendant (strict)
    ADS = "ad*"  # self-or-descendant


class PatternNode:
    """One node of the pattern tree ``T``.

    ``predicate`` receives the candidate data node; ``tag`` is sugar for a
    tag-equality predicate (both may be given; they conjoin).
    """

    def __init__(
        self,
        label: str,
        tag: Optional[str] = None,
        predicate: Optional[Callable[[SNode], bool]] = None,
    ):
        self.label = label
        self.tag = tag
        self.predicate = predicate
        self.children: List["PatternNode"] = []
        self.edge: EdgeType = EdgeType.PC  # edge to parent; root's is unused

    def add_child(self, child: "PatternNode", edge: EdgeType) -> "PatternNode":
        """Attach ``child`` below this node with the given edge label and
        return the child (for chaining)."""
        child.edge = edge
        self.children.append(child)
        return child

    def matches(self, node: SNode) -> bool:
        """Node-local predicate test."""
        if self.tag is not None and node.tag != self.tag:
            return False
        if self.predicate is not None and not self.predicate(node):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" tag={self.tag}" if self.tag else ""
        return f"PatternNode({self.label}{tag}, {len(self.children)} children)"


# ----------------------------------------------------------------------
# Scoring rules (the S component)
# ----------------------------------------------------------------------

class ScoreRule:
    """Base class for entries of the scoring specification ``S``."""

    def referenced_labels(self) -> Sequence[str]:
        """Labels whose scores this rule reads (dependency ordering)."""
        return ()


class NodeScore(ScoreRule):
    """Base for rules that score the matched data node directly (no
    dependence on other labels).  Subclasses implement
    ``evaluate(node) -> float``; user-defined node-scoring rules should
    derive from this class so the operators dispatch them generically."""

    def evaluate(self, node: SNode) -> float:
        raise NotImplementedError


class PhraseScore(NodeScore):
    """Primary IR-node rule: score the matched data node's subtree text
    with an IR scoring function."""

    def __init__(self, scorer: "ScoringFunction"):
        self.scorer = scorer

    def evaluate(self, node: SNode) -> float:
        return self.scorer.score_node(node)


class ExistingScore(NodeScore):
    """Rule that carries a node's already-assigned score through another
    pattern-matching operator unchanged (Example 3.1 applies a selection
    "with appropriate modifications in the pattern tree" to an
    already-scored tree — this rule is that modification)."""

    def evaluate(self, node: SNode) -> float:
        return node.score if node.score is not None else 0.0


class FromLabel(ScoreRule):
    """Secondary IR-node rule: ``$x.score = $y.score``.

    Under selection each embedding binds ``$y`` once, so the score copies
    over; under projection the node receives the *highest* score over all
    retained ``$y`` matches in its subtree (§3.2.2) — the operator handles
    that aggregation, this rule only names the source label.
    """

    def __init__(self, source_label: str):
        self.source_label = source_label

    def referenced_labels(self) -> Sequence[str]:
        return (self.source_label,)


class Combine(ScoreRule):
    """Secondary rule computing a function of other labels' scores, e.g.
    ``$1.score = ScoreBar($joinScore, $6.score)``."""

    def __init__(self, fn: Callable[..., float], labels: Sequence[str]):
        self.fn = fn
        self.labels = list(labels)

    def referenced_labels(self) -> Sequence[str]:
        return tuple(self.labels)

    def evaluate(self, scores: Dict[str, float]) -> float:
        return self.fn(*[scores.get(lbl, 0.0) for lbl in self.labels])


class JoinScore(ScoreRule):
    """Rule scoring an IR-style join condition between two matched nodes
    (e.g. title similarity), stored under a temporary label such as
    ``$joinScore``."""

    def __init__(self, fn: Callable[[SNode, SNode], float],
                 label_a: str, label_b: str):
        self.fn = fn
        self.label_a = label_a
        self.label_b = label_b

    def referenced_labels(self) -> Sequence[str]:
        return (self.label_a, self.label_b)

    def evaluate(self, node_a: SNode, node_b: SNode) -> float:
        return self.fn(node_a, node_b)


# ----------------------------------------------------------------------
# The pattern tree itself
# ----------------------------------------------------------------------

class ScoredPatternTree:
    """The triple ``P = (T, F, S)``.

    ``scoring`` maps labels (including temporary labels not present in the
    tree, for :class:`JoinScore` results) to :class:`ScoreRule` instances;
    rules are evaluated in an order compatible with their declared
    dependencies.  ``formula`` is an optional boolean predicate over a full
    embedding, used for cross-node conditions.
    """

    def __init__(
        self,
        root: PatternNode,
        scoring: Optional[Dict[str, ScoreRule]] = None,
        formula: Optional[Callable[["Match"], bool]] = None,
    ):
        self.root = root
        self.scoring: Dict[str, ScoreRule] = dict(scoring or {})
        self.formula = formula
        self._by_label: Dict[str, PatternNode] = {}
        self._parents: Dict[str, Optional[str]] = {}
        self._index_tree()
        self._validate()

    def _index_tree(self) -> None:
        def visit(node: PatternNode, parent: Optional[str]) -> None:
            if node.label in self._by_label:
                raise PatternError(f"duplicate pattern label {node.label!r}")
            self._by_label[node.label] = node
            self._parents[node.label] = parent
            for child in node.children:
                visit(child, node.label)

        visit(self.root, None)

    def _validate(self) -> None:
        tree_labels = set(self._by_label)
        all_score_labels = set(self.scoring)
        for label, rule in self.scoring.items():
            if isinstance(rule, PhraseScore) and label not in tree_labels:
                raise PatternError(
                    f"primary IR-node {label!r} is not a pattern-tree node"
                )
            for ref in rule.referenced_labels():
                if isinstance(rule, JoinScore):
                    if ref not in tree_labels:
                        raise PatternError(
                            f"join-score rule for {label!r} references "
                            f"unknown node {ref!r}"
                        )
                elif ref not in all_score_labels:
                    raise PatternError(
                        f"scoring rule for {label!r} references {ref!r}, "
                        f"which has no scoring rule"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[PatternNode]:
        """All pattern nodes, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def node(self, label: str) -> PatternNode:
        """Pattern node by label."""
        try:
            return self._by_label[label]
        except KeyError:
            raise PatternError(f"no pattern node labelled {label!r}")

    def has_node(self, label: str) -> bool:
        return label in self._by_label

    def parent_label(self, label: str) -> Optional[str]:
        """Label of the parent pattern node (None for the root)."""
        return self._parents[label]

    def labels(self) -> List[str]:
        return list(self._by_label)

    def primary_ir_labels(self) -> List[str]:
        """Labels carrying an IR-style predicate (a :class:`PhraseScore`)."""
        return [
            lbl for lbl, rule in self.scoring.items()
            if isinstance(rule, PhraseScore)
        ]

    def ir_labels(self) -> List[str]:
        """All labels with a scoring rule attached (primary + secondary),
        excluding temporary join-score variables not in the tree."""
        return [lbl for lbl in self.scoring if lbl in self._by_label]

    def scoring_order(self) -> List[str]:
        """Scoring labels in dependency order (primaries and join scores
        first, then combiners; insertion order breaks ties).  Cycles raise
        :class:`~repro.errors.PatternError`."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(label: str) -> None:
            if state.get(label) == 1:
                return
            if state.get(label) == 0:
                raise PatternError(
                    f"cyclic scoring dependency involving {label!r}"
                )
            state[label] = 0
            rule = self.scoring[label]
            if not isinstance(rule, JoinScore):
                for ref in rule.referenced_labels():
                    if ref in self.scoring:
                        visit(ref)
            state[label] = 1
            order.append(label)

        for label in self.scoring:
            visit(label)
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScoredPatternTree({len(self._by_label)} nodes, "
            f"{len(self.scoring)} scoring rules)"
        )
