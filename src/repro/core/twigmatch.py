"""Twig-accelerated pattern matching.

For pattern trees whose every node carries a tag test, embeddings can be
computed with the holistic twig join over the store's per-tag element
streams instead of backtracking over materialized trees:

1. relax every edge to ancestor-descendant and run
   :func:`repro.joins.twig.twig_join`;
2. post-filter the matches: ``pc`` edges check the parent pointer, ``ad*``
   edges additionally admit self-matches via a second pass (ad* = ad ∪
   self), node predicates and the cross-node formula run last.

The result provably equals :func:`repro.core.matching.find_embeddings`
on document-backed trees (asserted by unit and property tests), while the
heavy lifting happens on the integer element streams.

ad* handling: an ``ad*`` edge whose child may bind the *same* node as the
parent cannot be expressed in a pure-AD twig, so patterns containing
``ad*`` edges fall back to the backtracking matcher (:func:`applicable`
returns False for them).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.matching import Match
from repro.core.pattern import EdgeType, PatternNode, ScoredPatternTree
from repro.core.trees import SNode, STree
from repro.joins.twig import TwigNode, twig_join
from repro.xmldb.store import XMLStore


def applicable(pattern: ScoredPatternTree) -> bool:
    """Can this pattern run on the twig backend?  Every node needs a tag
    test and no edge may be ``ad*``."""
    for node in pattern.nodes():
        if node.tag is None:
            return False
        if node is not pattern.root and node.edge is EdgeType.ADS:
            return False
    return True


def _to_twig(pattern: ScoredPatternTree) -> TwigNode:
    def convert(pnode: PatternNode) -> TwigNode:
        twig = TwigNode(pnode.label, pnode.tag or "*")
        for child in pnode.children:
            twig.add_child(convert(child))
        return twig

    return convert(pattern.root)


def _source_index(tree: STree) -> Dict[tuple, SNode]:
    index: Dict[tuple, SNode] = {}
    for node in tree.nodes():
        if node.source is not None:
            index[node.source] = node
    return index


def find_embeddings_via_twig(
    store: XMLStore,
    pattern: ScoredPatternTree,
    tree: STree,
) -> List[Match]:
    """Embeddings of ``pattern`` into the document-backed ``tree``, via
    the twig join.  Requires :func:`applicable`; raises ``ValueError``
    otherwise (callers fall back to the backtracking matcher).

    Output order matches :func:`~repro.core.matching.find_embeddings`
    (document order of the root binding, then subsequent bindings).
    """
    if not applicable(pattern):
        raise ValueError("pattern not expressible as a pure-AD twig")
    if tree.root.source is None:
        raise ValueError("twig matching needs a document-backed tree")
    doc_id = tree.root.source[0]
    doc = store.document(doc_id)
    by_source = _source_index(tree)

    raw = twig_join(store, _to_twig(pattern))

    # Structural post-filters: restrict to this document/subtree, check
    # pc edges, then predicates and the formula.
    pc_edges = [
        (pattern.parent_label(n.label), n.label)
        for n in pattern.nodes()
        if n is not pattern.root and n.edge is EdgeType.PC
    ]
    out: List[Match] = []
    for m in raw:
        if any(ref[0] != doc_id or ref not in by_source for ref in m.values()):
            continue
        ok = True
        for parent_label, child_label in pc_edges:
            if doc.parents[m[child_label][1]] != m[parent_label][1]:
                ok = False
                break
        if not ok:
            continue
        match: Match = {
            label: by_source[ref] for label, ref in m.items()
        }
        if any(
            not pattern.node(lbl).matches(node)
            for lbl, node in match.items()
        ):
            continue
        if pattern.formula is not None and not pattern.formula(match):
            continue
        out.append(match)

    order = [n.label for n in pattern.nodes()]
    out.sort(key=lambda m: tuple(m[lbl].order_start for lbl in order))
    return out


def find_embeddings_auto(
    store: Optional[XMLStore],
    pattern: ScoredPatternTree,
    tree: STree,
) -> List[Match]:
    """Twig backend when possible, backtracking otherwise."""
    from repro.core.matching import find_embeddings

    if (
        store is not None
        and tree.root.source is not None
        and applicable(pattern)
    ):
        return find_embeddings_via_twig(store, pattern, tree)
    return find_embeddings(pattern, tree)


def matcher_for(store: XMLStore):
    """A ``matcher`` callable for
    :func:`repro.core.operators.scored_selection`: twig-accelerated when
    the pattern allows, transparent otherwise."""
    def match(pattern: ScoredPatternTree, tree: STree) -> List[Match]:
        return find_embeddings_auto(store, pattern, tree)

    return match
