"""Pattern-tree matching: enumerate embeddings of a scored pattern tree
into a scored data tree.

An embedding (a *match*) maps every pattern label to a data node such that

- every per-node predicate holds,
- every ``pc`` edge maps to a parent-child pair, every ``ad`` edge to a
  strict ancestor-descendant pair, and every ``ad*`` edge to a
  self-or-descendant pair,
- the pattern's cross-node ``formula`` (if any) holds on the whole match.

Matching is plain backtracking in pattern preorder; the algebra layer
favours transparent semantics (the access methods in :mod:`repro.access`
are the optimized path).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.core.pattern import EdgeType, PatternNode, ScoredPatternTree
from repro.core.trees import SNode, STree

#: A match binds pattern labels to data nodes.
Match = Dict[str, SNode]


def _candidates(base: SNode, edge: EdgeType) -> Iterator[SNode]:
    """Data-node candidates for a pattern child attached to the node bound
    to ``base`` via ``edge``."""
    if edge is EdgeType.PC:
        yield from base.children
    elif edge is EdgeType.AD:
        first = True
        for node in base.preorder():
            if first:          # skip base itself: 'ad' is strict
                first = False
                continue
            yield node
    else:  # ADS: self-or-descendant
        yield from base.preorder()


def find_embeddings(pattern: ScoredPatternTree, tree: STree) -> List[Match]:
    """All embeddings of ``pattern`` into ``tree``, in document order of
    the root binding (ties broken by subsequent bindings)."""
    results: List[Match] = []
    # Pattern nodes in preorder; each non-root constrains against its
    # (already bound) parent.
    order: List[PatternNode] = list(pattern.nodes())
    parents: Dict[str, PatternNode] = {}
    for pnode in order:
        for child in pnode.children:
            parents[child.label] = pnode

    def extend(i: int, match: Match) -> None:
        if i == len(order):
            if pattern.formula is None or pattern.formula(match):
                results.append(dict(match))
            return
        pnode = order[i]
        if pnode is pattern.root:
            candidates: Iterator[SNode] = tree.nodes()
        else:
            base = match[parents[pnode.label].label]
            candidates = _candidates(base, pnode.edge)
        for cand in candidates:
            if pnode.matches(cand):
                match[pnode.label] = cand
                extend(i + 1, match)
                del match[pnode.label]

    extend(0, {})
    return results


def match_exists(pattern: ScoredPatternTree, tree: STree) -> bool:
    """Whether at least one embedding exists (early-exit variant)."""
    order: List[PatternNode] = list(pattern.nodes())
    parents: Dict[str, PatternNode] = {}
    for pnode in order:
        for child in pnode.children:
            parents[child.label] = pnode

    def extend(i: int, match: Match) -> bool:
        if i == len(order):
            return pattern.formula is None or pattern.formula(match)
        pnode = order[i]
        if pnode is pattern.root:
            candidates: Iterator[SNode] = tree.nodes()
        else:
            base = match[parents[pnode.label].label]
            candidates = _candidates(base, pnode.edge)
        for cand in candidates:
            if pnode.matches(cand):
                match[pnode.label] = cand
                if extend(i + 1, match):
                    return True
                del match[pnode.label]
        return False

    return extend(0, {})
