"""TIX: the scored-tree bulk algebra (the paper's primary contribution).

The algebra manipulates *collections of scored ordered labeled trees*
(§3.1).  This package provides:

- :mod:`repro.core.trees` — scored data trees (:class:`SNode` /
  :class:`STree`) with conversion from stored documents;
- :mod:`repro.core.pattern` — scored pattern trees: pc / ad / ad* edges,
  node predicates, a formula for cross-node (join) conditions, and the
  scoring specification S (primary and secondary IR-nodes, join scores);
- :mod:`repro.core.matching` — embedding enumeration of pattern trees into
  data trees;
- :mod:`repro.core.scoring` — the scoring-function library (the paper's
  ScoreFoo / ScoreSim / ScoreBar from Fig. 9, tf·idf, and the proximity
  "complex" scorer of §6.1);
- :mod:`repro.core.operators` — ScoredSelection, ScoredProjection, Product,
  ScoredJoin, Threshold, Pick, GroupBy, Union, SortByScore (§3.2–3.3).

This is the *semantic* layer: operators materialize trees and favour
clarity over speed.  The high-performance evaluation path is
:mod:`repro.access` (TermJoin, PhraseFinder, stack-based Pick), which is
tested for equivalence against these operators.
"""

from repro.core.trees import (
    SNode, STree, snode_from_document, tree_from_document,
)
from repro.core.pattern import (
    EdgeType,
    PatternNode,
    ScoredPatternTree,
    NodeScore,
    PhraseScore,
    ExistingScore,
    FromLabel,
    Combine,
    JoinScore,
)
from repro.core.matching import find_embeddings, Match
from repro.core.scoring import (
    ScoringFunction,
    WeightedCountScorer,
    TfIdfScorer,
    ProximityScorer,
    score_sim,
    score_bar,
)
from repro.core.operators import (
    scored_selection,
    scored_projection,
    product,
    scored_join,
    threshold,
    pick,
    group_by_root_score,
    union_collections,
    sort_by_score,
    PickCriterion,
)

__all__ = [
    "SNode",
    "STree",
    "snode_from_document",
    "tree_from_document",
    "EdgeType",
    "PatternNode",
    "ScoredPatternTree",
    "NodeScore",
    "PhraseScore",
    "ExistingScore",
    "FromLabel",
    "Combine",
    "JoinScore",
    "find_embeddings",
    "Match",
    "ScoringFunction",
    "WeightedCountScorer",
    "TfIdfScorer",
    "ProximityScorer",
    "score_sim",
    "score_bar",
    "scored_selection",
    "scored_projection",
    "product",
    "scored_join",
    "threshold",
    "pick",
    "group_by_root_score",
    "union_collections",
    "sort_by_score",
    "PickCriterion",
]
