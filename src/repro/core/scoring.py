"""Scoring-function library.

Implements the paper's example user functions (Fig. 9) plus the two
scoring modes the evaluation section uses (§6.1) and a tf·idf scorer:

- :class:`WeightedCountScorer` — ``ScoreFoo``: a weighted sum of phrase
  occurrence counts over a node's subtree text (primary phrases weight
  0.8, secondary 0.6 in the paper's running example).  This is also the
  *simple* scoring function of the experiments (per-term weighted counts).
- :class:`ProximityScorer` — the *complex* scoring function of §6.1: term
  proximity (offset distance within a text node, node-distance multiples
  across text nodes) and the ratio of relevant children to total children.
- :class:`TfIdfScorer` — the tf·idf variant §3.1 suggests.
- :func:`score_sim` — ``ScoreSim``: word-overlap similarity of two nodes.
- :func:`score_bar` — ``ScoreBar``: combine a join score with a content
  score, zeroing out when the content score is zero.

All scorers expose a count/occurrence-level entry point used by the
TermJoin access methods (which accumulate counters on their stacks) in
addition to the tree-level ``score_node`` used by the algebra operators —
both produce identical values, which the tests assert.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.trees import SNode
from repro.xmldb.text import tokenize_phrase

#: An occurrence, as accumulated by TermJoin's complex mode:
#: (term, text_node_key, offset) — ``text_node_key`` is any value that is
#: equal for words of the same text node and monotone in document order
#: (node ids for stored documents; preorder index for algebra trees).
Occurrence = Tuple[str, int, int]


def s_stem(word: str) -> str:
    """Tiny plural stemmer: strips a trailing ``s`` from words longer than
    three characters (``engines`` → ``engine``).  The paper's example
    scores (Figs. 5-8) require "search engines" to count as an occurrence
    of the phrase "search engine"; this minimal stemmer is sufficient and
    deterministic."""
    if len(word) > 3 and word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word


class ScoringFunction:
    """Base class: a scoring function maps a data node to a real score."""

    def score_node(self, node: SNode) -> float:
        raise NotImplementedError

    def score_words(self, words: Sequence[str]) -> float:
        """Score a plain word sequence (no structure available)."""
        raise NotImplementedError


def count_phrase(words: Sequence[str], phrase: Sequence[str]) -> int:
    """Number of (possibly overlapping) occurrences of ``phrase`` as a
    contiguous subsequence of ``words``."""
    if not phrase or len(phrase) > len(words):
        return 0
    first = phrase[0]
    k = len(phrase)
    count = 0
    for i in range(len(words) - k + 1):
        if words[i] == first and list(words[i:i + k]) == list(phrase):
            count += 1
    return count


class WeightedCountScorer(ScoringFunction):
    """The paper's ``ScoreFoo`` (Fig. 9) and the experiments' *simple*
    scoring function.

    ``score = Σ_{a ∈ primary} 0.8·count(a, alltext)
            + Σ_{b ∈ secondary} 0.6·count(b, alltext)``

    Phrases may be multi-word; with ``stem=True`` a light plural stemmer
    is applied to both document words and phrase terms (needed to
    reproduce the paper's example scores exactly).
    """

    def __init__(
        self,
        primary: Sequence[str],
        secondary: Sequence[str] = (),
        primary_weight: float = 0.8,
        secondary_weight: float = 0.6,
        stem: bool = False,
    ):
        self.primary_weight = primary_weight
        self.secondary_weight = secondary_weight
        self.stem = stem
        self._phrases: List[Tuple[List[str], float]] = []
        for phrase in primary:
            self._phrases.append((self._prep(phrase), primary_weight))
        for phrase in secondary:
            self._phrases.append((self._prep(phrase), secondary_weight))

    def _prep(self, phrase: str) -> List[str]:
        terms = tokenize_phrase(phrase)
        if self.stem:
            terms = [s_stem(t) for t in terms]
        return terms

    @property
    def phrases(self) -> List[Tuple[List[str], float]]:
        """``(terms, weight)`` pairs, primaries first."""
        return list(self._phrases)

    def term_weights(self) -> Dict[str, float]:
        """``{term: weight}`` for single-term phrases — the interface the
        TermJoin access method consumes (it scores per-term counters)."""
        return {
            terms[0]: weight
            for terms, weight in self._phrases
            if len(terms) == 1
        }

    def score_words(self, words: Sequence[str]) -> float:
        if self.stem:
            words = [s_stem(w) for w in words]
        return sum(
            weight * count_phrase(words, terms)
            for terms, weight in self._phrases
        )

    def score_node(self, node: SNode) -> float:
        return self.score_words(node.subtree_words())

    def score_from_counts(self, counts: Mapping[str, int]) -> float:
        """Score from per-term counters (simple-mode TermJoin).  Only
        meaningful when every phrase is a single term."""
        weights = self.term_weights()
        return sum(weights[t] * c for t, c in counts.items() if t in weights)


class TfIdfScorer(ScoringFunction):
    """tf·idf with subtree-length normalization:
    ``Σ_t tf(t)·idf(t) / sqrt(len)`` — the "more representative of what an
    IR system would do" computation §3.1 suggests, "taking into
    consideration the element size"."""

    def __init__(self, terms: Sequence[str], idf: Mapping[str, float]):
        self.terms = [t.lower() for t in terms]
        self.idf = dict(idf)

    def score_words(self, words: Sequence[str]) -> float:
        if not words:
            return 0.0
        norm = math.sqrt(len(words))
        score = 0.0
        for t in self.terms:
            tf = sum(1 for w in words if w == t)
            if tf:
                score += tf * self.idf.get(t, 1.0)
        return score / norm

    def score_node(self, node: SNode) -> float:
        return self.score_words(node.subtree_words())

    def score_from_counts(self, counts: Mapping[str, int],
                          subtree_len: int) -> float:
        """Counter-level entry point (needs the subtree word count that
        TermJoin also tracks)."""
        if not subtree_len:
            return 0.0
        score = sum(
            c * self.idf.get(t, 1.0)
            for t, c in counts.items() if t in self.terms and c
        )
        return score / math.sqrt(subtree_len)


class ProximityScorer(ScoringFunction):
    """The *complex* scoring function of §6.1.

    Components, exactly as described:

    1. a base weighted count per term (as in the simple function);
    2. a proximity bonus — for each adjacent pair of occurrences of
       *different* query terms (in document order), a bonus
       ``1 / (1 + d)`` where the distance ``d`` is the offset difference
       when both occurrences are in the same text node, or
       ``node_distance × (node gap)`` when they are in different text
       nodes;
    3. the total is multiplied by the ratio of non-zero-scored (relevant)
       children to total children (leaves use ratio 1).
    """

    def __init__(
        self,
        terms: Sequence[str],
        term_weight: float = 1.0,
        node_distance: int = 20,
    ):
        self.terms = [t.lower() for t in terms]
        self._term_set = set(self.terms)
        self.term_weight = term_weight
        self.node_distance = node_distance

    def term_weights(self) -> Dict[str, float]:
        return {t: self.term_weight for t in self.terms}

    # -- occurrence-level (TermJoin complex mode) ------------------------

    def score_from_occurrences(
        self,
        occurrences: Sequence[Occurrence],
        n_children: int,
        n_relevant_children: int,
    ) -> float:
        """Score from a document-ordered occurrence list plus child
        relevance statistics."""
        base = self.term_weight * len(occurrences)
        bonus = 0.0
        for i in range(1, len(occurrences)):
            t1, n1, o1 = occurrences[i - 1]
            t2, n2, o2 = occurrences[i]
            if t1 == t2:
                continue
            if n1 == n2:
                d = abs(o2 - o1)
            else:
                d = self.node_distance * abs(n2 - n1)
            bonus += 1.0 / (1.0 + d)
        score = base + bonus
        if n_children > 0:
            score *= n_relevant_children / n_children
        return score

    # -- tree-level (algebra oracle) -------------------------------------

    def collect_occurrences(self, node: SNode) -> List[Occurrence]:
        """Document-ordered query-term occurrences in the subtree, keyed
        by preorder node index."""
        occs: List[Occurrence] = []
        for idx, n in enumerate(node.preorder()):
            for off, w in enumerate(n.words):
                if w in self._term_set:
                    occs.append((w, idx, off))
        return occs

    def score_node(self, node: SNode) -> float:
        occs = self.collect_occurrences(node)
        n_children = len(node.children)
        n_relevant = sum(
            1 for c in node.children if self.collect_occurrences(c)
        )
        return self.score_from_occurrences(occs, n_children, n_relevant)

    def score_words(self, words: Sequence[str]) -> float:
        occs: List[Occurrence] = [
            (w, 0, i) for i, w in enumerate(words) if w in self._term_set
        ]
        return self.score_from_occurrences(occs, 0, 0)


# ----------------------------------------------------------------------
# Join scoring (Fig. 9: ScoreSim, ScoreBar)
# ----------------------------------------------------------------------

def score_sim(a: SNode, b: SNode) -> float:
    """``ScoreSim``: the number of distinct words occurring in both nodes'
    text (Fig. 9's ``count-same``)."""
    return float(len(set(a.subtree_words()) & set(b.subtree_words())))


def score_bar(score1: float, score2: float) -> float:
    """``ScoreBar``: ``score1 + score2`` if ``score2 > 0`` else 0 — the
    join score only counts when the content score is positive."""
    return score1 + score2 if score2 > 0.0 else 0.0


def cosine_similarity(a_words: Iterable[str], b_words: Iterable[str]) -> float:
    """Vector-space cosine similarity over raw term frequencies — the
    "real function would be more complex, for example using vector space
    cosine similarity" alternative mentioned in §3.1."""
    va: Dict[str, int] = {}
    vb: Dict[str, int] = {}
    for w in a_words:
        va[w] = va.get(w, 0) + 1
    for w in b_words:
        vb[w] = vb.get(w, 0) + 1
    if not va or not vb:
        return 0.0
    dot = sum(c * vb.get(t, 0) for t, c in va.items())
    if not dot:
        return 0.0
    na = math.sqrt(sum(c * c for c in va.values()))
    nb = math.sqrt(sum(c * c for c in vb.values()))
    return dot / (na * nb)
