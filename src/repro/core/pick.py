"""The Pick operator's tree-level semantics (§3.3.2).

Pick removes redundancy among the data IR-nodes matching one query IR-node
("candidates").  The pick criterion is parameterized exactly as the
paper's stack algorithm (Fig. 12):

- ``det_worth(node)`` decides whether a candidate is *worth returning* on
  its own merits;
- the *vertical* (parent/child) rule: a worth-returning candidate is
  picked only if its closest picked candidate ancestor does not exist —
  between a parent and a child, only one is returned;
- optional *horizontal* elimination via ``is_same_class``: among picked
  candidate siblings of the same return class, only the first in document
  order is kept (the paper's "return only the first author" example).

The default ``det_worth`` is the paper's ``PickFoo`` (Fig. 9): a leaf
candidate is worth returning iff its score reaches the relevance
threshold; an internal candidate iff more than ``qualification`` of its
children are relevant.  The relevance threshold may be given directly or
derived from a score histogram ("top X% of scores"), the auxiliary-data
usage §5.3 describes.

The output tree keeps: picked candidates, nodes that are not candidates at
all (structural context, non-IR nodes, secondary IR-nodes), and the tree
root; dropped candidates' children are promoted to the nearest kept
ancestor.  Secondary scores are *not* recomputed here — the operator layer
(:func:`repro.core.operators.pick`) does that, since it knows the pattern.

This reproduces Figure 8 from Figure 6 exactly (tested in
``tests/integration/test_paper_figures.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.trees import SNode, STree


@dataclass
class PickCriterion:
    """The PC parameter of the Pick operator.

    ``relevance_threshold`` — condition 1) of the paper's example PC: a
    node is *relevant* when its score is at least this value.

    ``qualification`` — condition 2): an internal candidate is worth
    returning when the fraction of its relevant children exceeds this
    (default 0.5 = the paper's 50%).

    ``det_worth`` — override the whole worth decision with a user function
    (receives the candidate :class:`SNode`).

    ``is_same_class`` — enables horizontal redundancy elimination among
    picked siblings; two siblings in the same class are redundant and only
    the first is kept.

    ``ignore_zero_children`` — exclude zero/unscored children from the
    qualification denominator.  When Pick runs after a projection, the
    projection's drop-zero step has already removed irrelevant children;
    when Pick runs directly on a fully scored document tree (the query
    language's ``Pick $a using PickFoo($a)``), this flag provides the
    same effect, making the two paths agree (and both reproduce Fig. 8).
    """

    relevance_threshold: float = 0.8
    qualification: float = 0.5
    det_worth: Optional[Callable[[SNode], bool]] = None
    is_same_class: Optional[Callable[[SNode, SNode], bool]] = None
    ignore_zero_children: bool = False

    def is_relevant(self, node: SNode) -> bool:
        """Condition 1): score at least the relevance threshold."""
        return (node.score is not None
                and node.score >= self.relevance_threshold)

    def worth(self, node: SNode, candidate_children: Sequence[SNode]) -> bool:
        """Is ``node`` worth returning?  ``candidate_children`` are its
        child nodes in the *input tree* (candidates or not)."""
        if self.det_worth is not None:
            return self.det_worth(node)
        children = list(candidate_children)
        if self.ignore_zero_children:
            children = [
                c for c in children
                if c.score is not None and c.score != 0.0
            ]
        if not children:
            return self.is_relevant(node)
        relevant = sum(1 for c in children if self.is_relevant(c))
        return relevant / len(children) > self.qualification


def criterion_from_histogram(
    tree: STree,
    top_fraction: float,
    qualification: float = 0.5,
    n_buckets: int = 32,
    ignore_zero_children: bool = False,
) -> PickCriterion:
    """Build a criterion whose relevance threshold comes from the score
    histogram (§5.3): "it is often unrealistic to ask the users for the
    exact relevance score threshold … auxiliary data like [a] histogram
    … enables the user to specify such scores more flexibly."  The user
    says "the top ``top_fraction`` of scores are relevant"; the
    histogram converts that into an absolute threshold in O(buckets)."""
    from repro.xmldb.stats import ScoreHistogram

    scores = [n.score for n in tree.nodes() if n.score is not None]
    threshold = ScoreHistogram(scores, n_buckets=n_buckets) \
        .threshold_for_top_fraction(top_fraction)
    return PickCriterion(
        relevance_threshold=threshold,
        qualification=qualification,
        ignore_zero_children=ignore_zero_children,
    )


def default_same_class_by_level(tree: STree) -> Callable[[SNode, SNode], bool]:
    """The paper's example ``IsSameClass``: two nodes are in the same
    return class iff their levels have the same parity (both odd or both
    even)."""
    levels: Dict[int, int] = {}

    def depth(node: SNode, d: int) -> None:
        levels[id(node)] = d
        for c in node.children:
            depth(c, d + 1)

    depth(tree.root, 0)

    def same(a: SNode, b: SNode) -> bool:
        return levels[id(a)] % 2 == levels[id(b)] % 2

    return same


def compute_picked(
    tree: STree,
    candidates: Set[int],
    criterion: PickCriterion,
) -> Set[int]:
    """Decide which candidates are picked.

    ``candidates`` is a set of ``id(node)`` for the data IR-nodes matching
    the query IR-node mentioned in the PC.  Two passes over the tree
    (worth bottom-up via the children lists, picked top-down), both
    linear — the access-method variant in
    :mod:`repro.access.pick` fuses them into the paper's single
    stack-based scan and is tested equivalent.
    """
    picked: Set[int] = set()

    # The vertical rule is the paper's condition 3) verbatim: "its direct
    # parent node is not picked or it has no parent node" — only the
    # *immediate* parent blocks a pick, which is what lets a grandchild of
    # a picked node (e.g. #a13 under picked #a10 via dropped #a12) be
    # returned in Figure 8.
    def walk(node: SNode, parent_picked: bool) -> None:
        is_candidate = id(node) in candidates
        node_picked = False
        if is_candidate and not parent_picked:
            if criterion.worth(node, node.children):
                node_picked = True
                picked.add(id(node))
        for child in node.children:
            walk(child, node_picked)

    walk(tree.root, False)

    if criterion.is_same_class is not None:
        _horizontal_eliminate(tree, picked, criterion.is_same_class)
    return picked


def _horizontal_eliminate(
    tree: STree,
    picked: Set[int],
    is_same_class: Callable[[SNode, SNode], bool],
) -> None:
    """Among picked siblings, drop all but the document-first of each
    return class (in place)."""
    def walk(node: SNode) -> None:
        kept: List[SNode] = []
        for child in node.children:
            if id(child) in picked:
                for leader in kept:
                    if is_same_class(leader, child):
                        picked.discard(id(child))
                        break
                else:
                    kept.append(child)
            walk(child)

    walk(tree.root)


def prune_tree(
    tree: STree,
    candidates: Set[int],
    picked: Set[int],
) -> Optional[STree]:
    """Build the output tree: drop candidates that were not picked,
    promoting their children; keep everything else.  Returns ``None`` when
    nothing remains."""

    def rebuild(node: SNode) -> List[SNode]:
        new_children: List[SNode] = []
        for child in node.children:
            new_children.extend(rebuild(child))
        if id(node) in candidates and id(node) not in picked:
            return new_children  # dropped: promote children
        clone = node.shallow_copy()
        clone.children = new_children
        return [clone]

    roots = rebuild(tree.root)
    if not roots:
        return None
    if len(roots) == 1:
        return STree(roots[0])
    # Root itself was a dropped candidate with multiple surviving
    # children: keep them under a copy of the root acting as pure context.
    context = tree.root.shallow_copy()
    context.score = None
    context.children = roots
    return STree(context)


def pick_tree(tree: STree, candidates: Set[int],
              criterion: PickCriterion) -> Optional[STree]:
    """Full tree-level Pick: decide + prune.  See module docstring."""
    picked = compute_picked(tree, candidates, criterion)
    return prune_tree(tree, candidates, picked)
