"""TIX algebra operators (§3.2, §3.3).

All operators consume and produce *collections of scored trees*
(``List[STree]``), giving algebraic closure.  Score generation happens via
pattern matching: embeddings of the scored pattern tree assign scores to
the matched data IR-nodes per the pattern's scoring specification ``S``.

The operators here define the semantics; the pipelined engine
(:mod:`repro.engine`) and the access methods (:mod:`repro.access`)
implement the same semantics efficiently and are tested against these
definitions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.matching import Match, find_embeddings
from repro.core.pattern import (
    Combine,
    FromLabel,
    JoinScore,
    NodeScore,
    ScoredPatternTree,
)
from repro.core.pick import PickCriterion, pick_tree
from repro.core.trees import SNode, STree, build_minimal_hierarchy

__all__ = [
    "scored_selection",
    "scored_projection",
    "product",
    "scored_join",
    "threshold",
    "pick",
    "PickCriterion",
    "union_collections",
    "scored_union",
    "scored_value_join",
    "sort_by_score",
    "top_k_trees",
    "group_by_root_score",
    "k_threshold_via_grouping",
    "evaluate_match_scores",
]


# ----------------------------------------------------------------------
# Score evaluation over one embedding
# ----------------------------------------------------------------------

def evaluate_match_scores(
    pattern: ScoredPatternTree, match: Match
) -> Dict[str, float]:
    """Evaluate the scoring specification ``S`` on one embedding,
    in dependency order.  Returns ``{label: score}`` including temporary
    join-score labels."""
    scores: Dict[str, float] = {}
    for label in pattern.scoring_order():
        rule = pattern.scoring[label]
        if isinstance(rule, NodeScore):
            scores[label] = rule.evaluate(match[label])
        elif isinstance(rule, FromLabel):
            scores[label] = scores.get(rule.source_label, 0.0)
        elif isinstance(rule, JoinScore):
            scores[label] = rule.evaluate(
                match[rule.label_a], match[rule.label_b]
            )
        elif isinstance(rule, Combine):
            scores[label] = rule.evaluate(scores)
        else:  # pragma: no cover - future rule types
            raise TypeError(f"unknown scoring rule {type(rule).__name__}")
    return scores


# ----------------------------------------------------------------------
# Witness-tree construction
# ----------------------------------------------------------------------

def _pattern_depths(pattern: ScoredPatternTree) -> Dict[str, int]:
    depths: Dict[str, int] = {}

    def visit(node, d: int) -> None:
        depths[node.label] = d
        for c in node.children:
            visit(c, d + 1)

    visit(pattern.root, 0)
    return depths


def _pattern_ancestors(pattern: ScoredPatternTree) -> Dict[str, Set[str]]:
    """Label → set of its ancestor labels in the pattern tree."""
    ancestors: Dict[str, Set[str]] = {}

    def visit(node, chain: List[str]) -> None:
        ancestors[node.label] = set(chain)
        chain.append(node.label)
        for c in node.children:
            visit(c, chain)
        chain.pop()

    visit(pattern.root, [])
    return ancestors


def _build_witness(
    pattern: ScoredPatternTree,
    match: Match,
    scores: Dict[str, float],
) -> STree:
    """Build the witness tree of one embedding: one node per *binding*
    (label, data node), nested by the data hierarchy.  When two labels
    bind the same data node (an ``ad*`` edge matching the ancestor
    itself — Fig. 5(c)), the pattern hierarchy orders the copies."""
    depths = _pattern_depths(pattern)
    p_ancestors = _pattern_ancestors(pattern)
    entities: List[Tuple[str, SNode]] = [
        (label, match[label]) for label in pattern.labels()
    ]
    entities.sort(
        key=lambda e: (e[1].order_start, -e[1].order_end, depths[e[0]])
    )

    def parent_of(i: int) -> Optional[int]:
        """Index of the entity that should own entity ``i`` in the
        witness tree, or None for the root.

        Data hierarchy governs; when several labels bind the *same* data
        node (an ad* edge matching the ancestor itself, Fig. 5(c)), the
        pattern hierarchy breaks the tie: a copy nests under a same-node
        copy only if that copy's label is its pattern ancestor, and a
        different-node descendant attaches to the same-node copy whose
        label is its pattern ancestor when one exists (otherwise the
        pattern-shallowest copy, leaving the others as leaves).
        """
        label, node = entities[i]
        best: Optional[int] = None

        def better(j: int) -> bool:
            if best is None:
                return True
            blabel, bnode = entities[best]
            jlabel, jnode = entities[j]
            if bnode is not jnode:
                # Deeper data node wins.
                return bnode.is_ancestor_of(jnode)
            # Same data node: prefer a pattern ancestor of ours, deepest.
            j_rel = jlabel in p_ancestors[label]
            b_rel = blabel in p_ancestors[label]
            if j_rel != b_rel:
                return j_rel
            if j_rel:
                return depths[jlabel] > depths[blabel]
            return depths[jlabel] < depths[blabel]

        for j, (jlabel, jnode) in enumerate(entities):
            if j == i:
                continue
            if jnode is node:
                if jlabel in p_ancestors[label] and better(j):
                    best = j
            elif jnode.is_ancestor_of(node) and better(j):
                best = j
        return best

    copies: List[SNode] = []
    for label, node in entities:
        copy = node.shallow_copy()
        copy.children = []
        copy.labels = {label}
        copy.score = scores.get(label)
        copies.append(copy)

    root_copy: Optional[SNode] = None
    children: Dict[int, List[int]] = {}
    for i in range(len(entities)):
        p = parent_of(i)
        if p is None:
            root_copy = copies[i]
        else:
            children.setdefault(p, []).append(i)
    for p, kids in children.items():
        kids.sort(key=lambda i: (entities[i][1].order_start,
                                 depths[entities[i][0]]))
        copies[p].children = [copies[i] for i in kids]
    assert root_copy is not None
    return STree(root_copy)


# ----------------------------------------------------------------------
# Scored Selection (§3.2.1)
# ----------------------------------------------------------------------

def scored_selection(
    collection: Sequence[STree],
    pattern: ScoredPatternTree,
    matcher: Optional[Callable[[ScoredPatternTree, STree], List[Match]]]
    = None,
) -> List[STree]:
    """One witness tree per embedding of ``pattern`` into each input tree,
    with scores per the pattern's scoring specification.

    ``matcher`` overrides the embedding enumeration — pass
    ``repro.core.twigmatch.find_embeddings_auto`` partially applied to a
    store to route tag-constrained AD patterns through the holistic twig
    join."""
    find = matcher or find_embeddings
    out: List[STree] = []
    for tree in collection:
        tree.renumber()
        for match in find(pattern, tree):
            scores = evaluate_match_scores(pattern, match)
            out.append(_build_witness(pattern, match, scores))
    return out


# ----------------------------------------------------------------------
# Scored Projection (§3.2.2)
# ----------------------------------------------------------------------

def scored_projection(
    collection: Sequence[STree],
    pattern: ScoredPatternTree,
    pl: Sequence[str],
    drop_zero: bool = True,
) -> List[STree]:
    """Per input tree, one output tree retaining exactly the data nodes
    matched (in any embedding) by a label in the projection list ``PL``,
    hierarchy preserved, duplicates merged.

    Scores: nodes matching a *primary* query IR-node are scored with the
    scoring function; nodes matching a *secondary* IR-node get the highest
    score among the retained matches of the rule's source label in their
    subtree (§3.2.2).  With ``drop_zero`` (paper default) retained IR-nodes
    scoring zero are removed.
    """
    pl = list(pl)
    for label in pl:
        pattern.node(label)  # validates
    out: List[STree] = []
    for tree in collection:
        tree.renumber()
        matches = find_embeddings(pattern, tree)
        if not matches:
            continue
        retained: Dict[int, SNode] = {}
        node_labels: Dict[int, Set[str]] = {}
        for match in matches:
            for label in pl:
                node = match[label]
                retained[id(node)] = node
                node_labels.setdefault(id(node), set()).add(label)

        # Primary scores first (any node-scoring rule counts as primary).
        node_scores: Dict[int, Optional[float]] = {}
        for nid, node in retained.items():
            primaries = [
                lbl for lbl in node_labels[nid]
                if isinstance(pattern.scoring.get(lbl), NodeScore)
            ]
            if primaries:
                rule = pattern.scoring[primaries[0]]
                assert isinstance(rule, NodeScore)
                node_scores[nid] = rule.evaluate(node)

        ir_labels = set(pattern.scoring)
        if drop_zero:
            for nid in list(retained):
                if (
                    node_scores.get(nid) == 0.0
                    and node_labels[nid] <= ir_labels
                ):
                    del retained[nid]
                    del node_labels[nid]
                    del node_scores[nid]
        # A zero-scoring node retained only because it also plays a
        # non-IR role (e.g. the $3 sname in the running example) is pure
        # context: it carries no score in the output (Fig. 6 shows sname
        # unscored).
        for nid in retained:
            if (
                node_scores.get(nid) == 0.0
                and not (node_labels[nid] <= ir_labels)
            ):
                node_scores[nid] = None

        # Secondary (FromLabel) scores over the retained set.
        for label in pattern.scoring_order():
            rule = pattern.scoring[label]
            if not isinstance(rule, FromLabel) or label not in pl:
                continue
            src = rule.source_label
            for nid, node in retained.items():
                if label not in node_labels[nid]:
                    continue
                best: Optional[float] = None
                for mid, m in retained.items():
                    if src not in node_labels[mid]:
                        continue
                    s = node_scores.get(mid)
                    if s is None:
                        continue
                    if m is node or node.is_ancestor_of(m):
                        if best is None or s > best:
                            best = s
                if best is not None and (
                    node_scores.get(nid) is None or best > node_scores[nid]
                ):
                    node_scores[nid] = best

        if not retained:
            continue
        roots = build_minimal_hierarchy(list(retained.values()))
        # Transfer scores/labels onto the copies (minimal hierarchy made
        # shallow copies keyed by original node identity order).
        index = {
            (n.order_start, n.order_end): nid for nid, n in retained.items()
        }
        for root in roots:
            for copy in root.preorder():
                nid = index[(copy.order_start, copy.order_end)]
                copy.score = node_scores.get(nid)
                copy.labels = set(node_labels[nid])
            out.append(STree(root))
    return out


# ----------------------------------------------------------------------
# Product and Scored Join (§3.2.3)
# ----------------------------------------------------------------------

PROD_ROOT_TAG = "tix_prod_root"


def product(c1: Sequence[STree], c2: Sequence[STree]) -> List[STree]:
    """Cartesian product: every pair of trees becomes the two children of
    a fresh ``tix_prod_root``."""
    out: List[STree] = []
    for a in c1:
        for b in c2:
            root = SNode(PROD_ROOT_TAG)
            root.add_child(a.root.deep_copy())
            root.add_child(b.root.deep_copy())
            out.append(STree(root))
    return out


def scored_join(
    c1: Sequence[STree],
    c2: Sequence[STree],
    pattern: ScoredPatternTree,
) -> List[STree]:
    """Scored join = scored selection over the product (§3.2.3).  Join
    conditions live in the pattern's formula and/or
    :class:`~repro.core.pattern.JoinScore` rules."""
    return scored_selection(product(c1, c2), pattern)


# ----------------------------------------------------------------------
# Threshold (§3.3.1)
# ----------------------------------------------------------------------

def threshold(
    collection: Sequence[STree],
    label: str,
    min_score: Optional[float] = None,
    top_k: Optional[int] = None,
) -> List[STree]:
    """Keep the trees that satisfy the threshold condition on the data
    IR-nodes matching ``label``:

    - ``min_score`` (the paper's *V*): at least one matching node scores
      strictly above *V*;
    - ``top_k`` (the paper's *K*): at least one matching node ranks in the
      global top-*K* (by score, across all input trees).
    """
    if min_score is None and top_k is None:
        return list(collection)

    def label_nodes(tree: STree) -> List[SNode]:
        return [
            n for n in tree.nodes()
            if label in n.labels and n.score is not None
        ]

    survivors = list(collection)
    if min_score is not None:
        survivors = [
            t for t in survivors
            if any(n.score > min_score for n in label_nodes(t))
        ]
    if top_k is not None:
        all_scores: List[float] = []
        for t in survivors:
            all_scores.extend(
                n.score for n in label_nodes(t))  # type: ignore[misc]
        all_scores.sort(reverse=True)
        if not all_scores:
            return []
        cutoff_rank = min(top_k, len(all_scores))
        cutoff = all_scores[cutoff_rank - 1]
        survivors = [
            t for t in survivors
            if any(n.score >= cutoff for n in label_nodes(t))
        ]
    return survivors


# ----------------------------------------------------------------------
# Pick (§3.3.2)
# ----------------------------------------------------------------------

def pick(
    collection: Sequence[STree],
    label: str,
    criterion: PickCriterion,
    pattern: Optional[ScoredPatternTree] = None,
) -> List[STree]:
    """Apply the Pick operator to each tree.

    Candidates are the data IR-nodes matching ``label`` *exclusively* — a
    node that also plays a non-candidate role (e.g. the projection root
    matching both ``$1`` and ``$4`` in the running example) is kept as
    context even when its candidate entity is dropped, exactly as in the
    paper's walk-through ("the <article> data IR-node — not the root node —
    is dropped").

    When ``pattern`` is supplied, secondary (:class:`FromLabel`) scores are
    recomputed over the surviving candidates, reproducing the dynamic
    score change the paper describes (5.6 → 5.0 for the example article).
    """
    out: List[STree] = []
    for tree in collection:
        tree.renumber()
        candidates = {
            id(n) for n in tree.nodes()
            if label in n.labels and n.labels == {label}
        }
        result = pick_tree(tree, candidates, criterion)
        if result is None:
            continue
        if pattern is not None:
            _refresh_secondary_scores(result, pattern, label)
        out.append(result)
    return out


def _refresh_secondary_scores(
    tree: STree, pattern: ScoredPatternTree, pick_label: str
) -> None:
    """Recompute FromLabel scores whose source is the picked label."""
    tree.renumber()
    for sec_label in pattern.scoring_order():
        rule = pattern.scoring[sec_label]
        if not isinstance(rule, FromLabel) or rule.source_label != pick_label:
            continue
        for node in tree.nodes():
            if sec_label not in node.labels:
                continue
            # The node's own candidate entity (if it had one) was dropped
            # by Pick — mixed-label nodes are never candidates — so the
            # recomputation ranges over strict survivors only ("the
            # <article> data IR-node, not the root node, is dropped").
            best: Optional[float] = None
            for m in node.preorder():
                if m is node:
                    continue
                if pick_label in m.labels and m.score is not None:
                    if best is None or m.score > best:
                        best = m.score
            node.score = best if best is not None else 0.0


# ----------------------------------------------------------------------
# Union, value join, ordering (§5.2 algebra-level counterparts)
# ----------------------------------------------------------------------

def union_collections(*collections: Sequence[STree]) -> List[STree]:
    """Bag union of collections."""
    out: List[STree] = []
    for c in collections:
        out.extend(c)
    return out


def scored_union(
    c1: Sequence[STree],
    c2: Sequence[STree],
    combine: Callable[[float, float], float] = lambda a, b: a + b,
    w1: float = 1.0,
    w2: float = 1.0,
) -> List[STree]:
    """Scored set union (Example 5.2): trees whose roots share the same
    stored source are merged with ``combine(w1·s_A, w2·s_B)``; trees
    present on one side only keep ``combine`` applied with the missing
    score as 0."""
    def key(tree: STree):
        return tree.root.source

    left: Dict[object, Tuple[STree, float]] = {}
    order: List[object] = []
    right: Dict[object, float] = {}
    for tree in c1:
        k = key(tree) or ("left", id(tree))
        left[k] = (tree, tree.score or 0.0)
        order.append(k)
    out_trees: Dict[object, STree] = {}
    for tree in c2:
        k = key(tree) or ("right", id(tree))
        right[k] = tree.score or 0.0
        if k not in left:
            order.append(k)
            out_trees[k] = tree.deep_copy()
    for k, (tree, _) in left.items():
        out_trees[k] = tree.deep_copy()
    result: List[STree] = []
    for k in order:
        clone = out_trees[k]
        s_a = left[k][1] if k in left else 0.0
        s_b = right.get(k, 0.0)
        clone.root.score = combine(w1 * s_a, w2 * s_b)
        result.append(clone)
    return result


def scored_value_join(
    c1: Sequence[STree],
    c2: Sequence[STree],
    condition: Callable[[STree, STree], bool],
    score_fn: Callable[[float, float], float] = lambda a, b: a + b,
    w1: float = 1.0,
    w2: float = 1.0,
) -> List[STree]:
    """Scored value join (Example 5.1): pairs satisfying ``condition`` are
    merged under a ``tix_prod_root`` whose score is
    ``score_fn(w1·s_A, w2·s_B)``."""
    out: List[STree] = []
    for a in c1:
        for b in c2:
            if not condition(a, b):
                continue
            root = SNode(PROD_ROOT_TAG)
            root.add_child(a.root.deep_copy())
            root.add_child(b.root.deep_copy())
            root.score = score_fn(w1 * (a.score or 0.0), w2 * (b.score or 0.0))
            out.append(STree(root))
    return out


def sort_by_score(
    collection: Sequence[STree], descending: bool = True
) -> List[STree]:
    """Order a collection by tree score (None sorts last)."""
    def key(t: STree) -> float:
        return t.score if t.score is not None else float("-inf")

    return sorted(collection, key=key, reverse=descending)


def top_k_trees(collection: Sequence[STree], k: int) -> List[STree]:
    """The K-threshold expansion (§3.3.1): order by score, retain the
    leftmost *K* trees."""
    return sort_by_score(collection)[:k]


def group_by_root_score(
    collection: Sequence[STree],
) -> List[Tuple[float, List[STree]]]:
    """Group trees by identical root score, highest first — the grouping
    (empty basis, score ordering) the paper uses to express K-based
    thresholding with standard operators."""
    groups: Dict[float, List[STree]] = {}
    for t in collection:
        groups.setdefault(t.score or 0.0, []).append(t)
    return sorted(groups.items(), key=lambda kv: -kv[0])


def k_threshold_via_grouping(
    collection: Sequence[STree],
    label: str,
    k: int,
) -> List[STree]:
    """The paper's algebraic *expansion* of K-based thresholding
    (§3.3.1): "a grouping on the data IR-nodes using an empty grouping
    basis with the ordering function based on the score.  A projection
    is then applied to retain the leftmost K subtrees."

    Steps, literally:

    1. group *all* input trees into one group (empty grouping basis),
       with the member order given by the best ``label`` score of each
       tree (the ordering function);
    2. project out the leftmost *K* members.

    Tested equivalent to ``threshold(collection, label, top_k=k)`` up to
    the tie semantics: the dedicated operator keeps every tree tied with
    the k-th score (rank semantics), while the expansion cuts at exactly
    K members — the difference the Threshold operator exists to smooth
    over.
    """
    def best(tree: STree) -> float:
        scores = [
            n.score for n in tree.nodes()
            if label in n.labels and n.score is not None
        ]
        return max(scores) if scores else float("-inf")

    # Step 1: one group, ordered by the ordering function.
    group = sorted(collection, key=best, reverse=True)
    # Step 2: retain the leftmost K subtrees.
    return group[:k]
