"""Pipelined, set-oriented query evaluation engine (§5 framing).

The engine evaluates physical plans of iterator-style operators
(open / next / close) over collections of scored trees, so the TIX
operators and the new access methods slot into "a standard pipelined
database query evaluation engine" exactly as the paper proposes:

- sources: :class:`~repro.engine.operators.DocumentSource`,
  :class:`~repro.engine.operators.TagScan`,
  :class:`~repro.engine.operators.TermJoinScan`,
  :class:`~repro.engine.operators.PhraseFinderScan`;
- scored tree operators: Select / Project / Product / Join;
- score-utilizing operators: Threshold (streaming for V, blocking for K),
  Pick, Sort, Limit;
- plumbing: Union, Materialize, plan explain and execution statistics.
"""

from repro.engine.base import Operator, execute, explain
from repro.engine.operators import (
    DocumentSource,
    TagScan,
    TermJoinScan,
    PhraseFinderScan,
    Select,
    Project,
    Product,
    Join,
    ThresholdOp,
    PickOp,
    Sort,
    Limit,
    TopK,
    Union,
    ValueJoin,
    ScoredUnion,
    Materialize,
)

__all__ = [
    "Operator",
    "execute",
    "explain",
    "DocumentSource",
    "TagScan",
    "TermJoinScan",
    "PhraseFinderScan",
    "Select",
    "Project",
    "Product",
    "Join",
    "ThresholdOp",
    "PickOp",
    "Sort",
    "Limit",
    "TopK",
    "Union",
    "ValueJoin",
    "ScoredUnion",
    "Materialize",
]
