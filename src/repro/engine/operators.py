"""Physical operators for the pipelined engine.

Sources produce scored trees from the store; tree operators apply the TIX
algebra per input; the score-utilizing operators implement Threshold
(streaming for a V-condition, blocking for a K-condition, per §5.3) and
Pick (via the stack-based access method).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro import obs as _obs
from repro.resilience import guard as _resguard
from repro.access.phrasefinder import PhraseFinder
from repro.access.termjoin import TermJoin
from repro.core.operators import (
    PickCriterion,
    product as algebra_product,
    scored_projection,
    scored_selection,
)
from repro.core.pattern import ScoredPatternTree
from repro.core.trees import SNode, STree, tree_from_document
from repro.engine.base import Operator
from repro.xmldb.store import XMLStore


class DocumentSource(Operator):
    """Stream one tree per named document (all documents if unnamed)."""

    name = "doc-source"

    def __init__(self, store: XMLStore, doc_name: Optional[str] = None):
        super().__init__()
        self.store = store
        self.doc_name = doc_name
        self._queue: List[STree] = []

    def describe(self) -> str:
        return f"doc-source({self.doc_name or '*'})"

    def _open(self) -> None:
        if self.doc_name is not None:
            docs = [self.store.document(self.doc_name)]
        else:
            docs = list(self.store.documents())
        self._queue = [tree_from_document(d) for d in docs]

    def _next(self) -> Optional[STree]:
        return self._queue.pop(0) if self._queue else None


class TagScan(Operator):
    """Stream the subtree of every element with a given tag (optionally
    within one document) — the per-tag element list is read from the
    structure index."""

    name = "tag-scan"

    def __init__(self, store: XMLStore, tag: str,
                 doc_name: Optional[str] = None):
        super().__init__()
        self.store = store
        self.tag = tag
        self.doc_name = doc_name
        self._refs: List = []
        self._i = 0

    def describe(self) -> str:
        where = f" in {self.doc_name}" if self.doc_name else ""
        return f"tag-scan(<{self.tag}>{where})"

    def _open(self) -> None:
        refs = self.store.structure.elements_with_tag(self.tag)
        if self.doc_name is not None:
            doc_id = self.store.document(self.doc_name).doc_id
            refs = [r for r in refs if r[0] == doc_id]
        self._refs = refs
        self._i = 0

    def _next(self) -> Optional[STree]:
        if self._i >= len(self._refs):
            return None
        ref = self._refs[self._i]
        self._i += 1
        doc = self.store.document(ref[0])
        self.store.counters.nodes_fetched += 1
        g = _resguard.GUARD
        if g.active:
            g.count_materialized()
        return tree_from_document(doc, ref[4])


class TermJoinScan(Operator):
    """Source wrapping a score-generating access method (TermJoin or a
    baseline with the same ``run(terms)`` interface): one single-node tree
    per scored element, the stored subtree materialized lazily only when a
    downstream operator needs it (``materialize=True`` forces it)."""

    name = "termjoin-scan"

    def __init__(self, store: XMLStore, terms: Sequence[str],
                 method, materialize: bool = False,
                 min_score: Optional[float] = None):
        super().__init__()
        self.store = store
        self.terms = list(terms)
        self.method = method
        self.materialize = materialize
        self.min_score = min_score
        self._results: List = []
        self._i = 0

    def describe(self) -> str:
        return (
            f"termjoin-scan({getattr(self.method, 'name', 'method')}, "
            f"terms={self.terms})"
        )

    def _open(self) -> None:
        self._results = self.method.run(self.terms)
        self.stats.counters.update(getattr(self.method, "last_stats", {}))
        if self.min_score is not None:
            self._results = [
                r for r in self._results if r.score > self.min_score
            ]
        self._i = 0

    def _next(self) -> Optional[STree]:
        if self._i >= len(self._results):
            return None
        r = self._results[self._i]
        self._i += 1
        doc = self.store.document(r.doc_id)
        if self.materialize:
            g = _resguard.GUARD
            if g.active:
                g.count_materialized()
            tree = tree_from_document(doc, r.node_id)
            tree.root.score = r.score
        else:
            node = SNode(
                tag=doc.tags[r.node_id],
                attrs=dict(doc.attrs.get(r.node_id, {})),
                score=r.score,
                source=(r.doc_id, r.node_id),
            )
            tree = STree(node)
        return tree


class PhraseFinderScan(Operator):
    """Source wrapping PhraseFinder (or Comp3): one single-node tree per
    phrase-containing element, score = phrase count × weight."""

    name = "phrasefinder-scan"

    def __init__(self, store: XMLStore, phrase_terms: Sequence[str],
                 method: Optional[PhraseFinder] = None):
        super().__init__()
        self.store = store
        self.phrase_terms = list(phrase_terms)
        self.method = method or PhraseFinder(store)
        self._results: List = []
        self._i = 0

    def describe(self) -> str:
        return f"phrasefinder-scan({' '.join(self.phrase_terms)!r})"

    def _open(self) -> None:
        self._results = self.method.run(self.phrase_terms)
        self.stats.counters.update(getattr(self.method, "last_stats", {}))
        self._i = 0

    def _next(self) -> Optional[STree]:
        if self._i >= len(self._results):
            return None
        m = self._results[self._i]
        self._i += 1
        doc = self.store.document(m.doc_id)
        node = SNode(
            tag=doc.tags[m.node_id],
            score=m.score,
            source=(m.doc_id, m.node_id),
        )
        node.attrs["phrase-count"] = str(m.count)
        return STree(node)


class Select(Operator):
    """Scored selection: emits one witness tree per embedding per input."""

    name = "select"

    def __init__(self, child: Operator, pattern: ScoredPatternTree):
        super().__init__([child])
        self.pattern = pattern
        self._buffer: List[STree] = []

    def _next(self) -> Optional[STree]:
        while not self._buffer:
            item = self.children[0].next()
            if item is None:
                return None
            self._buffer = scored_selection([item], self.pattern)
        return self._buffer.pop(0)


class Project(Operator):
    """Scored projection with a projection list."""

    name = "project"

    def __init__(self, child: Operator, pattern: ScoredPatternTree,
                 pl: Sequence[str], drop_zero: bool = True):
        super().__init__([child])
        self.pattern = pattern
        self.pl = list(pl)
        self.drop_zero = drop_zero
        self._buffer: List[STree] = []

    def describe(self) -> str:
        return f"project(PL={self.pl})"

    def _next(self) -> Optional[STree]:
        while not self._buffer:
            item = self.children[0].next()
            if item is None:
                return None
            self._buffer = scored_projection(
                [item], self.pattern, self.pl, self.drop_zero
            )
        return self._buffer.pop(0)


class Product(Operator):
    """Cartesian product under ``tix_prod_root`` roots.  The right input
    is materialized once (block-nested-loops)."""

    name = "product"

    def __init__(self, left: Operator, right: Operator):
        super().__init__([left, right])
        self._right: List[STree] = []
        self._cur_left: Optional[STree] = None
        self._ri = 0

    def _open(self) -> None:
        right_op = self.children[1]
        self._right = list(right_op)
        self._cur_left = None
        self._ri = 0

    def _next(self) -> Optional[STree]:
        if not self._right:
            return None
        while True:
            if self._cur_left is None or self._ri >= len(self._right):
                self._cur_left = self.children[0].next()
                self._ri = 0
                if self._cur_left is None:
                    return None
            pair = algebra_product([self._cur_left],
                                   [self._right[self._ri]])
            self._ri += 1
            return pair[0]


class Join(Operator):
    """Scored join: selection with a join pattern over the product."""

    name = "join"

    def __init__(self, left: Operator, right: Operator,
                 pattern: ScoredPatternTree):
        super().__init__([Select(Product(left, right), pattern)])

    def _next(self) -> Optional[STree]:
        return self.children[0].next()


class ThresholdOp(Operator):
    """Threshold on the trees' data IR-nodes matching ``label``.

    A V-condition streams (each tree judged on its own); a K-condition is
    blocking (global ranking requires seeing every score first, as §5.3
    notes, unless upstream bounds are available)."""

    name = "threshold"

    def __init__(self, child: Operator, label: str,
                 min_score: Optional[float] = None,
                 top_k: Optional[int] = None):
        super().__init__([child])
        self.label = label
        self.min_score = min_score
        self.top_k = top_k
        self._buffer: Optional[List[STree]] = None

    def describe(self) -> str:
        return (
            f"threshold({self.label}, V={self.min_score}, K={self.top_k})"
        )

    def _label_scores(self, tree: STree) -> List[float]:
        return [
            n.score for n in tree.nodes()
            if self.label in n.labels and n.score is not None
        ]

    def _passes_v(self, tree: STree) -> bool:
        if self.min_score is None:
            return True
        return any(s > self.min_score for s in self._label_scores(tree))

    def _open(self) -> None:
        self._buffer = None
        if self.top_k is not None:
            # Blocking: materialize, rank globally, filter.
            from repro.core.operators import threshold as algebra_threshold

            items = [t for t in self.children[0] if self._passes_v(t)]
            self._buffer = algebra_threshold(
                items, self.label, top_k=self.top_k
            )

    def _next(self) -> Optional[STree]:
        if self._buffer is not None:
            return self._buffer.pop(0) if self._buffer else None
        while True:
            item = self.children[0].next()
            if item is None:
                return None
            if self._passes_v(item):
                return item


class PickOp(Operator):
    """Pick via the stack-based access method, per input tree."""

    name = "pick"

    def __init__(self, child: Operator, label: str,
                 criterion: PickCriterion,
                 pattern: Optional[ScoredPatternTree] = None):
        super().__init__([child])
        self.label = label
        self.criterion = criterion
        self.pattern = pattern

    def describe(self) -> str:
        return f"pick({self.label})"

    def _next(self) -> Optional[STree]:
        from repro.core.operators import pick as algebra_pick

        counters = self.stats.counters
        while True:
            item = self.children[0].next()
            if item is None:
                return None
            # Node-level elimination accounting walks the tree, so it is
            # taken only while a collector is installed.
            profiling = _obs.RECORDER.enabled
            if profiling:
                n_before = sum(1 for _ in item.nodes())
            result = algebra_pick(
                [item], self.label, self.criterion, self.pattern
            )
            if result:
                if profiling:
                    n_after = sum(1 for _ in result[0].nodes())
                    counters["nodes_eliminated"] = (
                        counters.get("nodes_eliminated", 0)
                        + max(0, n_before - n_after)
                    )
                return result[0]
            counters["trees_eliminated"] = \
                counters.get("trees_eliminated", 0) + 1
            if profiling:
                counters["nodes_eliminated"] = \
                    counters.get("nodes_eliminated", 0) + n_before


class Sort(Operator):
    """Blocking sort by tree score (descending by default) or a custom
    key."""

    name = "sort"

    def __init__(self, child: Operator,
                 key: Optional[Callable[[STree], float]] = None,
                 descending: bool = True):
        super().__init__([child])
        self.key = key or (
            lambda t: t.score if t.score is not None else float("-inf")
        )
        self.descending = descending
        self._buffer: List[STree] = []

    def _open(self) -> None:
        self._buffer = sorted(
            self.children[0], key=self.key, reverse=self.descending
        )

    def _next(self) -> Optional[STree]:
        return self._buffer.pop(0) if self._buffer else None


class Limit(Operator):
    """'stop after k' — emit at most k trees."""

    name = "limit"

    def __init__(self, child: Operator, k: int):
        super().__init__([child])
        self.k = k
        self._emitted = 0

    def describe(self) -> str:
        return f"limit({self.k})"

    def _open(self) -> None:
        self._emitted = 0

    def _next(self) -> Optional[STree]:
        if self._emitted >= self.k:
            return None
        item = self.children[0].next()
        if item is not None:
            self._emitted += 1
        return item


class ValueJoin(Operator):
    """The scored value join access method (Example 5.1): pairs of
    left/right trees satisfying the join condition are merged under a
    ``tix_prod_root`` whose score is ``f(w1·s_A, w2·s_B)``.  The right
    input is materialized once (block nested loops); an IR-style
    condition is typically a similarity predicate."""

    name = "value-join"

    def __init__(self, left: Operator, right: Operator,
                 condition, score_fn=None,
                 w1: float = 1.0, w2: float = 1.0):
        super().__init__([left, right])
        self.condition = condition
        self.score_fn = score_fn or (lambda a, b: a + b)
        self.w1 = w1
        self.w2 = w2
        self._right: List[STree] = []
        self._cur_left: Optional[STree] = None
        self._ri = 0

    def _open(self) -> None:
        self._right = list(self.children[1])
        self._cur_left = None
        self._ri = 0

    def _next(self) -> Optional[STree]:
        while True:
            if self._cur_left is None or self._ri >= len(self._right):
                self._cur_left = self.children[0].next()
                self._ri = 0
                if self._cur_left is None:
                    return None
            while self._ri < len(self._right):
                right = self._right[self._ri]
                self._ri += 1
                left = self._cur_left
                if not self.condition(left, right):
                    continue
                root = SNode("tix_prod_root")
                root.add_child(left.root.deep_copy())
                root.add_child(right.root.deep_copy())
                root.score = self.score_fn(
                    self.w1 * (left.score or 0.0),
                    self.w2 * (right.score or 0.0),
                )
                return STree(root)


class ScoredUnion(Operator):
    """The scored set union access method (Example 5.2): trees whose
    roots share a stored source are merged with
    ``f(w1·s_A, w2·s_B)``; one-sided trees get the missing score as 0.
    Blocking (both inputs must be seen to find the overlaps)."""

    name = "scored-union"

    def __init__(self, left: Operator, right: Operator,
                 combine=None, w1: float = 1.0, w2: float = 1.0):
        super().__init__([left, right])
        self.combine = combine or (lambda a, b: a + b)
        self.w1 = w1
        self.w2 = w2
        self._buffer: List[STree] = []

    def _open(self) -> None:
        from repro.core.operators import scored_union

        self._buffer = scored_union(
            list(self.children[0]), list(self.children[1]),
            combine=self.combine, w1=self.w1, w2=self.w2,
        )

    def _next(self) -> Optional[STree]:
        return self._buffer.pop(0) if self._buffer else None


class TopK(Operator):
    """Exact top-k by tree score with a bounded heap — the streaming
    replacement for Sort+Limit when only *k* ranked results are needed
    (§5.3's efficient K-Threshold evaluation).  Memory is O(k), not
    O(input); ties keep the earlier input."""

    name = "top-k"

    def __init__(self, child: Operator, k: int):
        super().__init__([child])
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._buffer: List[STree] = []

    def describe(self) -> str:
        return f"top-k({self.k})"

    def _open(self) -> None:
        import heapq

        heap: List[tuple] = []  # (score, -arrival, tree) min-heap
        arrival = 0
        for tree in self.children[0]:
            score = tree.score if tree.score is not None else float("-inf")
            arrival += 1
            entry = (score, -arrival, tree)
            if len(heap) < self.k:
                heapq.heappush(heap, entry)
            elif entry[:2] > heap[0][:2]:
                heapq.heapreplace(heap, entry)
        self._buffer = [
            t for _s, _a, t in sorted(heap, key=lambda e: (-e[0], -e[1]))
        ]

    def _next(self) -> Optional[STree]:
        return self._buffer.pop(0) if self._buffer else None


class Union(Operator):
    """Bag union: drain children in order."""

    name = "union"

    def __init__(self, children: Sequence[Operator]):
        super().__init__(children)
        self._ci = 0

    def _open(self) -> None:
        self._ci = 0

    def _next(self) -> Optional[STree]:
        while self._ci < len(self.children):
            item = self.children[self._ci].next()
            if item is not None:
                return item
            self._ci += 1
        return None


class Materialize(Operator):
    """Replace single-node source-referencing trees with their full
    stored subtrees (keeping the root score) — the final 'retrieve from
    the database and return to the user' step of Example 3.1."""

    name = "materialize"

    def __init__(self, child: Operator, store: XMLStore):
        super().__init__([child])
        self.store = store

    def _next(self) -> Optional[STree]:
        item = self.children[0].next()
        if item is None:
            return None
        src = item.root.source
        if src is None or item.root.children:
            return item
        doc = self.store.document(src[0])
        g = _resguard.GUARD
        if g.active:
            g.count_materialized()
        tree = tree_from_document(doc, src[1])
        tree.root.score = item.root.score
        tree.root.labels = set(item.root.labels)
        return tree
