"""Iterator-protocol base for physical operators.

Every operator implements the classic Volcano protocol:

- :meth:`Operator.open` — prepare; must be called before ``next``;
- :meth:`Operator.next` — produce the next item or ``None`` at end;
- :meth:`Operator.close` — release resources (closes children).

Operators form a tree via ``children``.  Items flowing between operators
are :class:`~repro.core.trees.STree` instances (collections of scored
trees are streams of scored trees).

Execution helpers: :func:`execute` drains a plan into a list;
:func:`explain` renders the plan tree with per-operator row counts after a
run (its output is stable and used in tests); ``explain(plan,
analyze=True)`` additionally shows per-operator time, loops, and
access-method counters, and :func:`plan_stats` returns the same data as a
JSON-ready dict (the EXPLAIN ANALYZE path — see
``docs/observability.md``).

Observability contract: every operator owns an :class:`OpStats`.  Row
counts and subclass-reported counters are maintained on every run;
*timings* are taken only while a collector is installed
(``obs.RECORDER.enabled``), so the disabled path adds a single attribute
test per ``next()`` call.  ``open``/``close`` additionally emit tracer
spans, which nest into a span tree mirroring the plan tree.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, Iterator, List, Optional, Sequence

from repro import obs as _obs
from repro.core.trees import STree
from repro.errors import PlanError
from repro.plan.estimate import qerror
from repro.resilience import guard as _resguard

#: Operator lifecycle states.  ``open()`` moves NEW/CLOSED → OPEN,
#: ``close()`` moves OPEN → CLOSED; a closed operator may be re-opened.
_NEW, _OPEN, _CLOSED = "new", "open", "closed"


class OpStats:
    """Per-operator execution statistics for one run.

    ``rows_out``/``loops``/``counters`` are exact on every run; the
    ``*_ns`` timings are populated only when a collector is installed.
    ``next_ns`` is *inclusive* (a parent's ``_next`` usually calls its
    children's ``next`` inside it), like PostgreSQL's EXPLAIN ANALYZE
    "actual time"; :func:`plan_stats` derives exclusive self-time.
    """

    __slots__ = ("loops", "open_ns", "next_ns", "close_ns", "counters")

    def __init__(self) -> None:
        self.loops = 0
        self.open_ns = 0
        self.next_ns = 0
        self.close_ns = 0
        self.counters: Dict[str, int] = {}

    def reset(self) -> None:
        self.loops = 0
        self.open_ns = 0
        self.next_ns = 0
        self.close_ns = 0
        self.counters.clear()

    @property
    def total_ns(self) -> int:
        return self.open_ns + self.next_ns + self.close_ns


class Operator:
    """Base physical operator."""

    #: short name used by explain(); subclasses override
    name = "operator"

    def __init__(self, children: Sequence["Operator"] = ()):
        self.children: List[Operator] = list(children)
        self._state = _NEW
        self.rows_out = 0
        self.stats = OpStats()
        #: Estimated output cardinality / cumulative cost, annotated by
        #: :func:`repro.plan.estimate.estimate_plan` at compile time
        #: (``None`` on hand-built plans).  Plan properties, not run
        #: stats: they survive ``open()``'s recursive stats reset so
        #: EXPLAIN ANALYZE can show estimated-vs-actual afterwards.
        self.est_rows: Optional[float] = None
        self.est_cost: Optional[float] = None
        #: Chosen-vs-rejected physical alternatives, attached to the
        #: plan *root* by the cost-based planner
        #: (:class:`repro.plan.optimizer.PlanChoices`; ``None`` on
        #: hand-built plans and non-root operators).  Rendered as the
        #: ``planner:`` footer of :func:`explain` and the ``planner``
        #: key of :func:`plan_stats`.
        self.planner_choices = None

    @property
    def _opened(self) -> bool:
        """Back-compat view of the lifecycle state."""
        return self._state is _OPEN

    # -- protocol ---------------------------------------------------------

    def open(self) -> None:
        """Prepare this operator and its children for iteration.

        Error safety: if any child's ``open()`` or this operator's
        ``_open()`` raises, every child opened so far is closed again and
        this operator is left un-opened — the tree stays in a consistent,
        re-openable state instead of leaking opened children.
        """
        if self._state is _OPEN:
            raise PlanError(f"{self.name}: open() called twice")
        self._state = _OPEN
        self.rows_out = 0
        self.stats.reset()
        rec = _obs.RECORDER
        enabled = rec.enabled
        if enabled:
            span = rec.begin_span("open:" + self.name, op=self.describe())
            t0 = perf_counter_ns()
        opened: List[Operator] = []
        try:
            for child in self.children:
                child.open()
                opened.append(child)
            self._open()
        except BaseException:
            self._state = _NEW
            for child in reversed(opened):
                try:
                    child.close()
                except Exception:
                    pass  # the original error wins
            if enabled:
                rec.end_span(span)
            raise
        if enabled:
            self.stats.open_ns = perf_counter_ns() - t0
            rec.end_span(span)

    def next(self) -> Optional[STree]:
        """Next output tree, or ``None`` when exhausted.

        Raises :class:`~repro.errors.PlanError` when driven outside the
        protocol (before ``open()`` or after ``close()``), and ticks the
        installed :class:`~repro.resilience.QueryGuard` once per call so
        any pipelined plan is deadline/cancellation-responsive even when
        its operators have no hot inner loops of their own."""
        if self._state is not _OPEN:
            if self._state is _CLOSED:
                raise PlanError(f"{self.name}: next() after close()")
            raise PlanError(f"{self.name}: next() before open()")
        g = _resguard.GUARD
        if g.active:
            g.tick()
        if _obs.RECORDER.enabled:
            st = self.stats
            st.loops += 1
            t0 = perf_counter_ns()
            item = self._next()
            st.next_ns += perf_counter_ns() - t0
        else:
            item = self._next()
        if item is not None:
            self.rows_out += 1
        return item

    def close(self) -> None:
        """Release resources; children are closed too."""
        if self._state is not _OPEN:
            if self._state is _CLOSED:
                raise PlanError(f"{self.name}: close() called twice")
            raise PlanError(f"{self.name}: close() before open()")
        self._state = _CLOSED
        rec = _obs.RECORDER
        if rec.enabled:
            st = self.stats
            span = rec.begin_span("close:" + self.name, op=self.describe())
            t0 = perf_counter_ns()
            try:
                self._close()
                for child in self.children:
                    child.close()
            finally:
                st.close_ns = perf_counter_ns() - t0
                if span is not None:
                    span.attrs.update(
                        rows=self.rows_out, loops=st.loops,
                        next_ms=st.next_ns / 1e6,
                    )
                rec.end_span(span)
                rec.count(f"operator.{self.name}.rows", self.rows_out)
                rec.observe(f"operator.{self.name}.time_ms",
                            st.total_ns / 1e6)
        else:
            self._close()
            for child in self.children:
                child.close()

    # -- subclass hooks ----------------------------------------------------

    def _open(self) -> None:  # pragma: no cover - default no-op
        pass

    def _next(self) -> Optional[STree]:
        raise NotImplementedError

    def _close(self) -> None:  # pragma: no cover - default no-op
        pass

    # -- conveniences -------------------------------------------------------

    def __iter__(self) -> Iterator[STree]:
        """Iterate an opened operator (does not open/close itself)."""
        while True:
            item = self.next()
            if item is None:
                return
            yield item

    def describe(self) -> str:
        """One-line description used by explain(); override to include
        parameters."""
        return self.name


def execute(plan: Operator) -> List[STree]:
    """Open, drain, and close a plan; returns all produced trees."""
    plan.open()
    try:
        return list(plan)
    finally:
        plan.close()


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}ms"


def explain(plan: Operator, _depth: int = 0, analyze: bool = False) -> str:
    """Render the plan tree, one operator per line, with row counts from
    the most recent execution.

    Plans annotated by the estimator additionally show
    ``(est_rows=N)`` per line; with ``analyze=True`` the estimate moves
    into the bracket next to the actual row count along with the
    per-operator q-error (``max(est/actual, actual/est)``, 1-safe), so
    estimated-vs-actual reads off one line.

    With ``analyze=True`` each line additionally shows cumulative
    operator time (inclusive of children, measured only when a collector
    was installed during the run), ``next()`` call count, and any
    access-method counters the operator reported::

        termjoin-scan(...) [time=1.742ms rows=42 est_rows=38
                            q_error=1.11 loops=43 postings_scanned=1204]

    Plans built by the cost-based planner end with a ``planner:``
    footer listing, per decision point, the chosen physical operator
    (with its estimated cost and the stage that chose it) and the
    rejected alternatives with their costs.
    """
    pad = "  " * _depth
    est = plan.est_rows
    if analyze:
        st = plan.stats
        parts_line = [
            f"time={_fmt_ms(st.total_ns)}",
            f"rows={plan.rows_out}",
        ]
        if est is not None:
            parts_line.append(f"est_rows={est:.0f}")
            parts_line.append(f"q_error={qerror(est, plan.rows_out):.2f}")
        parts_line.append(f"loops={st.loops}")
        for key in sorted(st.counters):
            parts_line.append(f"{key}={st.counters[key]}")
        line = f"{pad}{plan.describe()} [{' '.join(parts_line)}]"
    else:
        line = f"{pad}{plan.describe()} [rows={plan.rows_out}]"
        if est is not None:
            line += f" (est_rows={est:.0f})"
    parts = [line]
    for child in plan.children:
        parts.append(explain(child, _depth + 1, analyze))
    if _depth == 0 and plan.planner_choices is not None:
        parts.append(plan.planner_choices.render())
    return "\n".join(parts)


def plan_stats(plan: Operator) -> Dict[str, object]:
    """EXPLAIN ANALYZE data for the most recent run, as a JSON-ready
    nested dict (one node per operator).

    ``time_ms`` is inclusive of children; ``self_time_ms`` subtracts the
    children's inclusive totals (clamped at zero — blocking operators
    that drain a child inside ``_open`` overlap with it).

    ``est_rows``/``q_error`` are ``None`` on plans the estimator never
    annotated (hand-built trees); otherwise ``q_error`` compares the
    estimate against this run's actual row count.

    Planner-built roots additionally carry a ``planner`` key with the
    chosen-vs-rejected decision record (absent elsewhere)."""
    st = plan.stats
    children = [plan_stats(c) for c in plan.children]
    child_ns = sum(c.stats.total_ns for c in plan.children)
    est = plan.est_rows
    out: Dict[str, object] = {
        "operator": plan.name,
        "describe": plan.describe(),
        "rows": plan.rows_out,
        "est_rows": est,
        "q_error": (qerror(est, plan.rows_out)
                    if est is not None else None),
        "loops": st.loops,
        "time_ms": st.total_ns / 1e6,
        "self_time_ms": max(0, st.total_ns - child_ns) / 1e6,
        "counters": dict(st.counters),
        "children": children,
    }
    if plan.planner_choices is not None:
        out["planner"] = plan.planner_choices.to_dict()
    return out
