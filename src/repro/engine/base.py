"""Iterator-protocol base for physical operators.

Every operator implements the classic Volcano protocol:

- :meth:`Operator.open` — prepare; must be called before ``next``;
- :meth:`Operator.next` — produce the next item or ``None`` at end;
- :meth:`Operator.close` — release resources (closes children).

Operators form a tree via ``children``.  Items flowing between operators
are :class:`~repro.core.trees.STree` instances (collections of scored
trees are streams of scored trees).

Execution helpers: :func:`execute` drains a plan into a list;
:func:`explain` renders the plan tree with per-operator row counts after a
run (its output is stable and used in tests).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.trees import STree
from repro.errors import PlanError


class Operator:
    """Base physical operator."""

    #: short name used by explain(); subclasses override
    name = "operator"

    def __init__(self, children: Sequence["Operator"] = ()):
        self.children: List[Operator] = list(children)
        self._opened = False
        self.rows_out = 0

    # -- protocol ---------------------------------------------------------

    def open(self) -> None:
        """Prepare this operator and its children for iteration."""
        if self._opened:
            raise PlanError(f"{self.name}: open() called twice")
        self._opened = True
        self.rows_out = 0
        for child in self.children:
            child.open()
        self._open()

    def next(self) -> Optional[STree]:
        """Next output tree, or ``None`` when exhausted."""
        if not self._opened:
            raise PlanError(f"{self.name}: next() before open()")
        item = self._next()
        if item is not None:
            self.rows_out += 1
        return item

    def close(self) -> None:
        """Release resources; children are closed too."""
        if not self._opened:
            raise PlanError(f"{self.name}: close() before open()")
        self._opened = False
        self._close()
        for child in self.children:
            child.close()

    # -- subclass hooks ----------------------------------------------------

    def _open(self) -> None:  # pragma: no cover - default no-op
        pass

    def _next(self) -> Optional[STree]:
        raise NotImplementedError

    def _close(self) -> None:  # pragma: no cover - default no-op
        pass

    # -- conveniences -------------------------------------------------------

    def __iter__(self) -> Iterator[STree]:
        """Iterate an opened operator (does not open/close itself)."""
        while True:
            item = self.next()
            if item is None:
                return
            yield item

    def describe(self) -> str:
        """One-line description used by explain(); override to include
        parameters."""
        return self.name


def execute(plan: Operator) -> List[STree]:
    """Open, drain, and close a plan; returns all produced trees."""
    plan.open()
    try:
        return list(plan)
    finally:
        plan.close()


def explain(plan: Operator, _depth: int = 0) -> str:
    """Render the plan tree, one operator per line, with row counts from
    the most recent execution."""
    pad = "  " * _depth
    line = f"{pad}{plan.describe()} [rows={plan.rows_out}]"
    parts = [line]
    for child in plan.children:
        parts.append(explain(child, _depth + 1))
    return "\n".join(parts)
