"""TIX: Querying Structured Text in an XML Database — a faithful,
from-scratch reproduction of Al-Khalifa, Yu & Jagadish (SIGMOD 2003).

Layers (bottom-up):

- :mod:`repro.xmldb` — region-encoded XML storage substrate (own parser,
  documents, store, statistics);
- :mod:`repro.index` — positional inverted index and structure index;
- :mod:`repro.joins` — stack-based structural joins and Generalized Meet;
- :mod:`repro.core` — the TIX algebra: scored trees, scored pattern
  trees, Selection/Projection/Join/Threshold/Pick, scoring functions;
- :mod:`repro.access` — the access methods: TermJoin, Enhanced TermJoin,
  PhraseFinder, stack-based Pick, and the Comp1/Comp2/Comp3 baselines;
- :mod:`repro.engine` — pipelined (open/next/close) physical operators;
- :mod:`repro.query` — the extended-XQuery front end (parser, evaluator,
  plan compiler, user-function registry);
- :mod:`repro.workload` / :mod:`repro.bench` — synthetic INEX-like
  corpora and the harness regenerating every table of the paper's §6.

Quickstart::

    from repro.xmldb import XMLStore
    from repro.query import run_query

    store = XMLStore.from_sources({"articles.xml": "<article>…</article>"})
    results = run_query(store, '''
        For $a in document("articles.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
        Pick $a using PickFoo($a)
        Return <result><score>{ $a/@score }</score>{ $a }</result>
        Sortby(score)
        Threshold $a/@score > 0 stop after 5
    ''')
"""

__version__ = "1.0.0"

from repro.xmldb import XMLStore, parse_document
from repro.core import (
    STree,
    SNode,
    ScoredPatternTree,
    PatternNode,
    EdgeType,
    scored_selection,
    scored_projection,
    scored_join,
    threshold,
    pick,
    PickCriterion,
)
from repro.access import (
    TermJoin,
    EnhancedTermJoin,
    PhraseFinder,
    PickAccess,
)
from repro.query import run_query

__all__ = [
    "__version__",
    "XMLStore",
    "parse_document",
    "STree",
    "SNode",
    "ScoredPatternTree",
    "PatternNode",
    "EdgeType",
    "scored_selection",
    "scored_projection",
    "scored_join",
    "threshold",
    "pick",
    "PickCriterion",
    "TermJoin",
    "EnhancedTermJoin",
    "PhraseFinder",
    "PickAccess",
    "run_query",
]
