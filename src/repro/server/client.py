"""Pooled wire-protocol client: health-checked checkout, jittered
retries, circuit breaker.

:class:`Connection` is one socket speaking the frame protocol —
``call()`` writes a request, reads the matching response, and raises
the typed exception a received error envelope stands for
(:func:`~repro.server.protocol.raise_for_error`), so a remote
``TIMEOUT`` re-raises locally as
:class:`~repro.errors.QueryTimeoutError`.

:class:`PooledClient` multiplexes callers over a bounded pool:

- **health-checked checkout** — a connection idle longer than
  ``health_check_idle_s`` is pinged before reuse; a stale one is
  discarded and replaced rather than handed to the caller;
- **retry with decorrelated jitter** — transient transport failures
  (connect refused/reset, peer closed mid-call) retry on a *fresh*
  connection with :func:`repro.resilience.faultinject.retry` in
  jittered mode, so a fleet of recovering clients does not stampede
  the server in lock-step.  Queries are read-only, which is what makes
  the retry safe.  Seedable (``seed=``) for the chaos suite;
- **circuit breaker** — ``breaker_threshold`` *consecutive* connect
  failures open the circuit: calls fail fast with
  :class:`~repro.errors.CircuitOpenError` (no connect attempt, no
  timeout wait) until ``breaker_cooldown_s`` elapses, then one
  half-open probe decides between closing it and re-opening.

Typed server rejections (``OVERLOADED``, ``SHUTTING_DOWN``) are *not*
retried here — the server explicitly asked the caller to back off, and
hammering it defeats admission control.  Callers see the typed
exception and decide.

**Distributed tracing**: every logical call mints a
:class:`~repro.obs.tracestore.TraceContext` (``trace=False`` turns it
off, making frames indistinguishable from an old client's) and carries
it on each attempt with an ascending retry counter — a retry storm
shows up server-side as one trace id with attempts 0, 1, 2 … instead
of unrelated traces.  The server echoes the ``trace_id`` it served
under (:attr:`RemoteResult.trace_id`), which is the join key into its
retained-trace store (``tix trace --server``).
"""

from __future__ import annotations

import itertools
import socket
import threading
from time import monotonic
from typing import Any, Dict, List, Optional

from repro import obs as _obs
from repro.errors import CircuitOpenError, ProtocolError, TIXError
from repro.obs.tracestore import TraceContext
from repro.resilience.faultinject import retry
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    TRACE_FIELD,
    raise_for_error,
    read_frame,
    request,
    write_frame,
)

__all__ = [
    "RemoteRow", "RemoteResult", "Connection", "CircuitBreaker",
    "PooledClient",
]

#: Transport-level failures worth retrying on a fresh connection.
_TRANSIENT = (ConnectionError, socket.timeout, OSError)


class RemoteRow:
    """One result row off the wire: the score and the serialized XML."""

    __slots__ = ("score", "xml")

    def __init__(self, score: Optional[float], xml: str) -> None:
        self.score = score
        self.xml = xml

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteRow(score={self.score!r}, xml={self.xml[:40]!r})"


class RemoteResult:
    """A successful ``query`` response (possibly truncated/degraded)."""

    __slots__ = (
        "rows", "truncated", "reason", "degraded", "generation",
        "queued_ms", "trace_id",
    )

    def __init__(self, rows: List[RemoteRow], truncated: bool,
                 reason: str, degraded: bool, generation: int,
                 queued_ms: float, trace_id: str = "") -> None:
        self.rows = rows
        self.truncated = truncated
        self.reason = reason
        self.degraded = degraded
        self.generation = generation
        self.queued_ms = queued_ms
        #: The server-side trace id this result was served under ("" on
        #: an old server that does not echo one).
        self.trace_id = trace_id

    @property
    def n_results(self) -> int:
        return len(self.rows)


class Connection:
    """One client socket speaking the frame protocol."""

    def __init__(self, sock: socket.socket,
                 call_timeout_s: Optional[float] = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._sock = sock
        self._call_timeout_s = call_timeout_s
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        #: monotonic timestamp of the last completed call (health check)
        self.last_used = monotonic()

    @classmethod
    def connect(cls, host: str, port: int, *,
                connect_timeout_s: float = 5.0,
                call_timeout_s: Optional[float] = 30.0,
                max_frame_bytes: int = MAX_FRAME_BYTES) -> "Connection":
        sock = socket.create_connection(
            (host, port), timeout=connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, call_timeout_s=call_timeout_s,
                   max_frame_bytes=max_frame_bytes)

    def call(self, op: str, *, timeout_s: Optional[float] = None,
             **fields: Any) -> Dict[str, Any]:
        """One request/response round trip.  Raises the typed exception
        for an error envelope; transport errors propagate as
        ``OSError``/:class:`~repro.errors.ProtocolError`."""
        rid = next(self._ids)
        self._sock.settimeout(
            timeout_s if timeout_s is not None else self._call_timeout_s)
        write_frame(self._sock, request(op, rid, **fields),
                    self._max_frame_bytes)
        resp = read_frame(self._sock, self._max_frame_bytes)
        if resp is None:
            raise ConnectionError(
                "server closed the connection before answering"
            )
        got = resp.get("id")
        if got is not None and got != rid:
            raise ProtocolError(
                f"response id {got!r} does not match request id {rid}"
            )
        self.last_used = monotonic()
        return raise_for_error(resp)

    def ping(self, timeout_s: Optional[float] = None) -> bool:
        """Liveness round trip; ``False`` on any failure."""
        try:
            resp = self.call("ping", timeout_s=timeout_s)
        except (TIXError, OSError):
            return False
        return bool(resp.get("pong"))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class CircuitBreaker:
    """Open after ``threshold`` consecutive failures; half-open one
    probe after ``cooldown_s``; close again on success."""

    def __init__(self, threshold: int = 5,
                 cooldown_s: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if monotonic() - self._opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a connect attempt proceed right now?  In half-open
        state exactly one probe is let through per cooldown lapse."""
        with self._lock:
            if self._opened_at is None:
                return True
            if monotonic() - self._opened_at < self.cooldown_s:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        rec = _obs.RECORDER
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                if self._opened_at is None:
                    self.opens += 1
                    if rec.enabled:
                        rec.count("client.breaker_opens")
                self._opened_at = monotonic()


class PooledClient:
    """Bounded connection pool over one server (module docstring).

    :param size: pooled connections kept idle (checkout never blocks —
        beyond ``size`` concurrent callers, extra connections are
        opened and closed instead of pooled);
    :param connect_timeout_s: TCP connect deadline;
    :param call_timeout_s: per-call response deadline;
    :param retries: total attempts for a call hitting transient
        transport failures;
    :param retry_base_s / retry_max_s: decorrelated-jitter backoff
        envelope between attempts;
    :param breaker_threshold / breaker_cooldown_s: circuit breaker on
        consecutive *connect* failures;
    :param health_check_idle_s: ping a pooled connection idle longer
        than this before reuse;
    :param trace: mint and propagate a trace context per logical call
        (off → frames look exactly like an old client's);
    :param seed: seeds the jitter RNG (chaos-suite reproducibility).
    """

    def __init__(self, host: str, port: int, *, size: int = 4,
                 connect_timeout_s: float = 5.0,
                 call_timeout_s: Optional[float] = 30.0,
                 retries: int = 3,
                 retry_base_s: float = 0.01,
                 retry_max_s: float = 0.25,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 1.0,
                 health_check_idle_s: float = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 trace: bool = True,
                 seed: Optional[int] = None) -> None:
        import random

        self.trace = trace
        self.host = host
        self.port = port
        self.size = size
        self.connect_timeout_s = connect_timeout_s
        self.call_timeout_s = call_timeout_s
        self.retries = retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.health_check_idle_s = health_check_idle_s
        self.max_frame_bytes = max_frame_bytes
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._idle: List[Connection] = []
        self._closed = False

    # -- pool mechanics --------------------------------------------------

    def _connect(self) -> Connection:
        """Open a fresh connection through the circuit breaker."""
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port} after "
                f"{self.breaker.threshold} consecutive connect failures"
            )
        try:
            conn = Connection.connect(
                self.host, self.port,
                connect_timeout_s=self.connect_timeout_s,
                call_timeout_s=self.call_timeout_s,
                max_frame_bytes=self.max_frame_bytes,
            )
        except BaseException:
            # *Every* failed attempt — OSError or not — must hand the
            # half-open probe token back via record_failure, or
            # ``_probing`` stays True forever and the breaker wedges
            # open with no thread allowed to probe again.
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return conn

    def _checkout(self) -> Connection:
        """A healthy connection: pooled (pinged when idle too long) or
        freshly opened."""
        while True:
            with self._lock:
                if self._closed:
                    raise ConnectionError("client pool is closed")
                conn = self._idle.pop() if self._idle else None
            if conn is None:
                return self._connect()
            if monotonic() - conn.last_used <= self.health_check_idle_s:
                return conn
            if conn.ping(timeout_s=self.connect_timeout_s):
                return conn
            conn.close()  # stale: discard and keep looking

    def _checkin(self, conn: Connection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    # -- calls -----------------------------------------------------------

    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One logical call, retried across fresh connections on
        transient transport failure (jittered, seedable backoff).
        Typed server errors (incl. OVERLOADED) are never retried.

        With tracing on, one :class:`TraceContext` is minted per
        *logical* call and re-sent on every retry with an incremented
        ``attempt`` counter, so the server sees the retries as one
        causal story."""
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("client.requests")
        ctx = TraceContext.mint() if self.trace else None

        def attempt() -> Dict[str, Any]:
            if ctx is not None:
                fields[TRACE_FIELD] = ctx.to_wire()
                ctx.attempt += 1  # next retry, if any, is attempt N+1
            conn = self._checkout()
            try:
                resp = conn.call(op, **fields)
            except (ProtocolError, OSError):
                # Transport/framing failure: this socket is unusable.
                conn.close()
                raise
            except TIXError:
                # Typed server error: the connection itself is fine.
                self._checkin(conn)
                raise
            self._checkin(conn)
            return resp

        try:
            result = retry(
                attempt,
                attempts=self.retries,
                base_delay=self.retry_base_s,
                retryable=_TRANSIENT,
                non_retryable=(CircuitOpenError,),
                jitter=True,
                max_delay=self.retry_max_s,
                rng=self._rng,
            )
        except (TIXError, OSError):
            if rec.enabled:
                rec.count("client.errors")
            raise
        assert isinstance(result, dict)
        return result

    def query(self, source: str, *,
              timeout_ms: Optional[float] = None,
              max_rows: Optional[int] = None,
              degrade: bool = True,
              with_scores: bool = False) -> RemoteResult:
        """Run ``source`` on the server under its admission control and
        per-request guard budgets."""
        fields: Dict[str, Any] = {
            "q": source, "degrade": degrade, "with_scores": with_scores,
        }
        if timeout_ms is not None:
            fields["timeout_ms"] = timeout_ms
        if max_rows is not None:
            fields["max_rows"] = max_rows
        resp = self._call("query", **fields)
        rows = [
            RemoteRow(r.get("score"), str(r.get("xml", "")))
            for r in resp.get("rows", ())
        ]
        return RemoteResult(
            rows=rows,
            truncated=bool(resp.get("truncated")),
            reason=str(resp.get("reason", "")),
            degraded=bool(resp.get("degraded")),
            generation=int(resp.get("generation", 0)),
            queued_ms=float(resp.get("queued_ms", 0.0)),
            trace_id=str(resp.get("trace_id", "")),
        )

    def ping(self) -> bool:
        try:
            return bool(self._call("ping").get("pong"))
        except (TIXError, OSError):
            return False

    def stats(self) -> Dict[str, Any]:
        """The server's admission/inflight snapshot."""
        resp = self._call("stats")
        stats = resp.get("stats")
        return stats if isinstance(stats, dict) else {}

    def traces(self, trace_id: Optional[str] = None, *,
               fmt: Optional[str] = None,
               limit: int = 50) -> Dict[str, Any]:
        """The server's trace-store snapshot (no ``trace_id``), or one
        retained/in-flight trace — full span tree, or Chrome
        ``traceEvents`` with ``fmt="chrome"``.  Raises ``NOT_FOUND``
        for an unknown id and ``BAD_REQUEST`` on an old server without
        the ``traces`` op."""
        fields: Dict[str, Any] = {"limit": limit}
        if trace_id is not None:
            fields["trace_id"] = trace_id
        if fmt is not None:
            fields["format"] = fmt
        resp = self._call("traces", **fields)
        traces = resp.get("traces")
        return traces if isinstance(traces, dict) else {}

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "PooledClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
