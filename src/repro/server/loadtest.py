"""Load-test a live query server with a concurrent client fleet.

``run_loadtest`` mirrors :func:`repro.perf.batch.execute_batch` on the
other side of the wire: a ``ThreadPoolExecutor`` fleet where each
worker owns its own :class:`~repro.server.client.PooledClient` and
sends requests round-robin over the query set.  Every outcome is
categorized — complete, truncated/degraded partial, typed rejection
(``OVERLOADED`` / ``SHUTTING_DOWN``), typed engine error, or transport
error — so a run against an overloaded server shows the overload
ladder working (rejections and partials, zero transport errors, no
hangs) instead of a pile of stack traces.

Client jitter RNGs are seeded per worker from ``seed``, so a loadtest
is as reproducible as the server's timing allows.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import (
    OverloadedError,
    ShuttingDownError,
    TIXError,
)
from repro.server.client import PooledClient
from repro.server.protocol import error_code

__all__ = ["LoadtestOutcome", "LoadtestReport", "run_loadtest"]


@dataclass
class LoadtestOutcome:
    """One request's fate."""

    index: int
    source: str
    category: str = ""  # ok | truncated | rejected | error | transport
    code: str = ""      # wire error code when category is rejected/error
    n_results: int = 0
    degraded: bool = False
    elapsed_ms: float = 0.0
    trace_id: str = ""  # server-side trace id (echoed on success)


@dataclass
class LoadtestReport:
    """Aggregated fleet outcomes."""

    outcomes: List[LoadtestOutcome] = field(default_factory=list)
    wall_ms: float = 0.0
    clients: int = 0

    @property
    def sent(self) -> int:
        return len(self.outcomes)

    def count(self, category: str) -> int:
        return sum(1 for o in self.outcomes if o.category == category)

    @property
    def n_ok(self) -> int:
        return self.count("ok") + self.count("truncated")

    @property
    def n_rejected(self) -> int:
        return self.count("rejected")

    @property
    def n_transport_errors(self) -> int:
        return self.count("transport")

    @property
    def n_degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    def by_code(self) -> Dict[str, int]:
        codes: Dict[str, int] = {}
        for o in self.outcomes:
            if o.code:
                codes[o.code] = codes.get(o.code, 0) + 1
        return codes

    def latency_ms(self, q: float) -> float:
        """The ``q`` latency quantile over all outcomes (0 when empty)."""
        lats = sorted(o.elapsed_ms for o in self.outcomes)
        if not lats:
            return 0.0
        idx = min(len(lats) - 1, int(q * len(lats)))
        return lats[idx]

    def slowest_traces(self, limit: int = 5) -> List[Dict[str, Any]]:
        """The slowest traced outcomes — the ids to look up in the
        server's retained traces (``tix trace --server``)."""
        traced = [o for o in self.outcomes if o.trace_id]
        traced.sort(key=lambda o: o.elapsed_ms, reverse=True)
        return [
            {
                "trace_id": o.trace_id,
                "elapsed_ms": round(o.elapsed_ms, 3),
                "category": o.category,
            }
            for o in traced[:limit]
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "ok": self.count("ok"),
            "truncated": self.count("truncated"),
            "rejected": self.n_rejected,
            "errors": self.count("error"),
            "transport_errors": self.n_transport_errors,
            "degraded": self.n_degraded,
            "by_code": self.by_code(),
            "clients": self.clients,
            "wall_ms": round(self.wall_ms, 3),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p95": round(self.latency_ms(0.95), 3),
                "p99": round(self.latency_ms(0.99), 3),
            },
            "slowest_traces": self.slowest_traces(),
        }

    def render(self) -> str:
        d = self.to_dict()
        lines = [
            f"loadtest: {d['sent']} requests over {d['clients']} clients "
            f"in {d['wall_ms']:.1f} ms",
            f"  ok: {d['ok']}  truncated: {d['truncated']}  "
            f"rejected: {d['rejected']}  errors: {d['errors']}  "
            f"transport: {d['transport_errors']}  "
            f"degraded: {d['degraded']}",
            f"  latency p50/p95/p99: "
            f"{d['latency_ms']['p50']:.1f}/"
            f"{d['latency_ms']['p95']:.1f}/"
            f"{d['latency_ms']['p99']:.1f} ms",
        ]
        if d["by_code"]:
            codes = ", ".join(
                f"{code}={n}" for code, n in sorted(d["by_code"].items())
            )
            lines.append(f"  codes: {codes}")
        slow = d["slowest_traces"]
        if slow:
            lines.append("  slowest traces: " + ", ".join(
                f"{t['trace_id']} ({t['elapsed_ms']:.1f} ms)"
                for t in slow[:3]
            ))
        return "\n".join(lines)


def _run_one(client: PooledClient, outcome: LoadtestOutcome, *,
             timeout_ms: Optional[float], max_rows: Optional[int],
             degrade: bool) -> LoadtestOutcome:
    t0 = perf_counter()
    try:
        res = client.query(
            outcome.source, timeout_ms=timeout_ms, max_rows=max_rows,
            degrade=degrade,
        )
        outcome.category = "truncated" if res.truncated else "ok"
        outcome.n_results = res.n_results
        outcome.degraded = res.degraded
        outcome.trace_id = res.trace_id
    except (OverloadedError, ShuttingDownError) as exc:
        outcome.category = "rejected"
        outcome.code = error_code(exc)
    except TIXError as exc:
        outcome.category = "error"
        outcome.code = error_code(exc)
    except OSError:
        outcome.category = "transport"
        outcome.code = "TRANSPORT"
    outcome.elapsed_ms = (perf_counter() - t0) * 1000.0
    return outcome


def run_loadtest(host: str, port: int, sources: Sequence[str], *,
                 clients: int = 8, total: int = 64,
                 timeout_ms: Optional[float] = None,
                 max_rows: Optional[int] = None,
                 degrade: bool = True,
                 call_timeout_s: float = 30.0,
                 retries: int = 3,
                 seed: int = 0) -> LoadtestReport:
    """Send ``total`` requests (round-robin over ``sources``) from
    ``clients`` concurrent workers, each with its own pooled client.

    Workers reuse their pooled connections across requests, so the
    server sees ``clients`` long-lived connections with pipelined
    request pressure — the shape admission control exists for.
    """
    sources = list(sources)
    if not sources:
        raise ValueError("run_loadtest needs at least one query")
    clients = max(1, clients)
    outcomes = [
        LoadtestOutcome(index=i, source=sources[i % len(sources)])
        for i in range(total)
    ]
    pools = [
        PooledClient(host, port, size=1, call_timeout_s=call_timeout_s,
                     retries=retries, seed=seed + worker)
        for worker in range(clients)
    ]
    def worker_loop(worker: int) -> None:
        # Strided slice: worker w owns outcomes w, w+clients, … and
        # drives them sequentially over its own pooled client, so the
        # server sees exactly `clients` concurrent request streams.
        for o in outcomes[worker::clients]:
            _run_one(pools[worker], o, timeout_ms=timeout_ms,
                     max_rows=max_rows, degrade=degrade)

    t0 = perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=clients) as pool:
            futures = [
                pool.submit(worker_loop, w) for w in range(clients)
            ]
            for fut in futures:
                fut.result()
    finally:
        for p in pools:
            p.close()
    return LoadtestReport(
        outcomes=outcomes,
        wall_ms=(perf_counter() - t0) * 1000.0,
        clients=clients,
    )
