"""The wire protocol: length-prefixed JSON frames + the error taxonomy.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Both directions use the
same framing; a connection carries a sequence of request/response
pairs, answered in order.

**Requests** carry ``{"v": 1, "id": <caller-chosen>, "op": <name>}``
plus per-op fields:

- ``query`` — ``q`` (source text), optional ``timeout_ms``,
  ``max_rows``, ``degrade`` (default true), ``with_scores``;
- ``ping`` — liveness/health check, answered without admission;
- ``stats`` — the server's admission/inflight snapshot.

**Responses** echo ``v`` and ``id``.  Success is ``{"ok": true, ...}``
(for ``query``: ``rows`` as ``[{"score": …, "xml": …}, …]``, ``n``,
``truncated``, ``reason``, ``degraded``, ``generation``).  Failure is a
typed envelope::

    {"v": 1, "id": …, "ok": false,
     "error": {"code": "TIMEOUT", "type": "QueryTimeoutError",
               "message": "query exceeded its 50 ms deadline"}}

``code`` is the stable wire-level taxonomy (:data:`ERROR_CODES`) built
on the existing exception hierarchy — guard trips, ``PlanError``,
parse/compile errors, and the serving-layer ``OVERLOADED`` /
``SHUTTING_DOWN`` rejections all map to distinct codes, and
:func:`exception_for` maps a received envelope back to the matching
exception class so remote errors re-raise as their local types.

**Trace context** rides in an optional ``"trace"`` request field
(``{"id": …, "span": …, "attempt": …}``, see
:class:`repro.obs.tracestore.TraceContext`) and successful/failed
responses echo the ``trace_id`` they were served under.  The field is
deliberately *not* a protocol-version bump: an old server ignores the
unknown key, and a frame without it makes a new server mint a root
trace locally — old clients, new clients, old servers and new servers
interoperate in every pairing.  :func:`parse_trace_context` never
raises on malformed values for the same reason.

Framing is hardened: a frame longer than ``max_bytes`` raises
:class:`~repro.errors.ProtocolError` before any allocation, a
connection closed mid-frame raises ``ProtocolError`` ("torn frame")
rather than returning garbage, and a clean close at a frame boundary
reads as ``None``.  The ``server.frame_read`` / ``server.frame_write``
fault points let the chaos suite inject I/O failures at exactly these
spots.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Type

from repro.errors import (
    CircuitOpenError,
    DocumentNotFoundError,
    OverloadedError,
    PatternError,
    PlanError,
    ProtocolError,
    QueryCancelledError,
    QueryCompileError,
    QuerySyntaxError,
    QueryTimeoutError,
    ResourceExhaustedError,
    ShuttingDownError,
    TIXError,
)
from repro.obs.tracestore import TraceContext
from repro.resilience import faultinject as _faults

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "ERROR_CODES", "TRACE_FIELD",
    "read_frame", "write_frame",
    "request", "ok_response", "error_response",
    "trace_fields", "parse_trace_context",
    "error_code", "exception_for", "raise_for_error",
]

#: Protocol version stamped on every frame.  A server answers any
#: request whose ``v`` is at most its own version; a larger ``v`` is a
#: ``BAD_REQUEST`` (the client is newer than the server).
PROTOCOL_VERSION = 1

#: Default per-frame size ceiling.  Large enough for any sane query or
#: result page, small enough that a hostile/corrupt length prefix
#: cannot make the peer allocate gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")

#: Exception type → stable wire error code, most specific first.
#: (Mapping insertion order is the dispatch order.)
ERROR_CODES: Dict[Type[BaseException], str] = {
    QueryTimeoutError: "TIMEOUT",
    QueryCancelledError: "CANCELLED",
    ResourceExhaustedError: "RESOURCE_EXHAUSTED",
    QuerySyntaxError: "SYNTAX",
    QueryCompileError: "COMPILE",
    PlanError: "PLAN",
    PatternError: "PATTERN",
    DocumentNotFoundError: "NOT_FOUND",
    OverloadedError: "OVERLOADED",
    ShuttingDownError: "SHUTTING_DOWN",
    CircuitOpenError: "CIRCUIT_OPEN",
    ProtocolError: "BAD_FRAME",
    TIXError: "ENGINE",
}

#: Wire error code → exception class raised client-side.  Codes with no
#: entry (including "INTERNAL" and future codes) fall back to TIXError.
_EXCEPTION_BY_CODE: Dict[str, Type[TIXError]] = {
    code: exc_type
    for exc_type, code in ERROR_CODES.items()
    if issubclass(exc_type, TIXError)
}


def error_code(exc: BaseException) -> str:
    """The wire code for ``exc`` ("INTERNAL" for non-engine errors)."""
    for exc_type, code in ERROR_CODES.items():
        if isinstance(exc, exc_type):
            return code
    return "INTERNAL"


def exception_for(code: str, message: str) -> TIXError:
    """Build the local exception a received error envelope stands for."""
    exc_type = _EXCEPTION_BY_CODE.get(code, TIXError)
    return exc_type(message)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def _read_exact(sock: socket.socket, n: int,
                allow_eof: bool = False) -> Optional[bytes]:
    """Read exactly ``n`` bytes.  A clean close before the first byte
    returns ``None`` when ``allow_eof``; a close anywhere else is a
    torn frame."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if allow_eof and got == 0:
                return None
            raise ProtocolError(
                f"torn frame: connection closed after {got} of {n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[Dict[str, Any]]:
    """Read one frame.  Returns the decoded object, or ``None`` on a
    clean close at a frame boundary.  Raises
    :class:`~repro.errors.ProtocolError` on a torn, oversized, or
    non-JSON-object frame; ``socket.timeout`` / ``OSError`` propagate
    for the caller's transport-level handling."""
    _faults.INJECTOR.fire("server.frame_read")
    header = _read_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    body = _read_exact(sock, length)
    assert body is not None
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def write_frame(sock: socket.socket, obj: Dict[str, Any],
                max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and send one frame (length prefix + JSON body)."""
    _faults.INJECTOR.fire("server.frame_write")
    data = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    payload = data.encode("utf-8")
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


# ----------------------------------------------------------------------
# Frame constructors
# ----------------------------------------------------------------------

#: Request-frame key carrying the propagated trace context.
TRACE_FIELD = "trace"


def trace_fields(context: Optional[TraceContext]) -> Dict[str, Any]:
    """The extra request fields propagating ``context`` (empty when
    tracing is off — the frame then looks exactly like an old
    client's)."""
    if context is None:
        return {}
    return {TRACE_FIELD: context.to_wire()}


def parse_trace_context(frame: Dict[str, Any]) -> Optional[TraceContext]:
    """The trace context a request frame carries, or ``None`` for old
    clients / malformed values (the server then mints a root trace
    locally).  Never raises — back-compat by construction."""
    return TraceContext.from_wire(frame.get(TRACE_FIELD))


def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """A request frame for ``op`` with caller-chosen ``request_id``."""
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION, "id": request_id, "op": op,
    }
    frame.update(fields)
    return frame


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    """A success response echoing ``request_id``."""
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION, "id": request_id, "ok": True,
    }
    frame.update(fields)
    return frame


def error_response(request_id: Any, exc: BaseException,
                   code: Optional[str] = None, **fields: Any,
                   ) -> Dict[str, Any]:
    """A typed error envelope for ``exc`` echoing ``request_id``."""
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION, "id": request_id, "ok": False,
        "error": {
            "code": code if code is not None else error_code(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }
    frame.update(fields)
    return frame


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``response`` if it is a success frame; re-raise a typed
    exception built from its error envelope otherwise."""
    if response.get("ok"):
        return response
    envelope = response.get("error") or {}
    code = str(envelope.get("code", "INTERNAL"))
    message = str(envelope.get("message", "")) or f"server error ({code})"
    raise exception_for(code, message)
