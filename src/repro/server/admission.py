"""Admission control and transactional read visibility for the server.

:class:`AdmissionController` is the overload ladder's first three
rungs, tied to the :class:`~repro.resilience.guard.QueryGuard` budgets
the fourth rung (degrade-to-partial) already speaks:

1. **queue** — beyond ``max_inflight`` concurrently executing
   requests, new arrivals wait up to ``queue_timeout_s``;
2. **reject** — a request still queued at the timeout is refused with
   a typed :class:`~repro.errors.OverloadedError` (wire code
   ``OVERLOADED``) instead of piling onto a saturated server;
3. **degrade** — while rejections are recent (*sustained* overload,
   see :meth:`AdmissionController.under_pressure`), admitted requests
   are marked ``degraded``: the server tightens their guard budgets
   and forces degrade mode, trading complete answers for partial ones
   so the server keeps answering instead of dying;
4. **drain** — :meth:`AdmissionController.drain` stops admission
   (:class:`~repro.errors.ShuttingDownError`) and waits for in-flight
   requests to finish, which is what lets ``SIGTERM`` answer every
   accepted request before sockets close.

:class:`StoreGate` provides the serving path's transactional read
visibility over ``store.generation``: queries run as *readers* pinned
to the generation observed at entry, document add/remove runs as the
exclusive *writer* and rebuilds the store's lazy index/structure/stats
before readers re-enter.  Readers therefore never observe a torn
corpus (half-renumbered doc ids, an invalidated index mid-merge), and
each lazy rebuild happens exactly once per generation bump instead of
racing among reader threads.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import monotonic
from typing import TYPE_CHECKING, Deque, Dict, Iterator, Optional

from repro import obs as _obs
from repro.errors import OverloadedError, ShuttingDownError

if TYPE_CHECKING:
    from repro.xmldb.store import XMLStore

__all__ = ["AdmissionTicket", "AdmissionController", "StoreGate"]


@dataclass
class AdmissionTicket:
    """One admitted request: the generation pinned at admission, how
    long it queued, and whether the pressure ladder degraded it."""

    generation: int
    queued_ms: float = 0.0
    degraded: bool = False


class AdmissionController:
    """Semaphore-bounded admission with queueing, typed rejection,
    pressure-triggered degradation, and draining (module docstring).

    :param max_inflight: concurrently executing requests;
    :param queue_timeout_s: longest a request may wait for a slot;
    :param pressure_window_s: a rejection within this window marks the
        overload *sustained* — admitted requests degrade until the
        window empties.
    """

    def __init__(self, max_inflight: int = 8,
                 queue_timeout_s: float = 1.0,
                 pressure_window_s: float = 2.0) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.queue_timeout_s = queue_timeout_s
        self.pressure_window_s = pressure_window_s
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._rejections: Deque[float] = deque()
        # Lifetime tallies (also mirrored as metrics when collecting).
        self.admitted = 0
        self.rejected_overload = 0
        self.rejected_shutdown = 0
        self.degraded = 0

    # -- admission -------------------------------------------------------

    def admit(self, generation: int = 0) -> AdmissionTicket:
        """Admit one request, queueing up to the timeout.  Raises
        :class:`OverloadedError` on queue timeout and
        :class:`ShuttingDownError` while draining."""
        t0 = monotonic()
        deadline = t0 + self.queue_timeout_s
        rec = _obs.RECORDER
        with self._cond:
            while True:
                if self._draining:
                    self.rejected_shutdown += 1
                    if rec.enabled:
                        rec.count("server.rejected.shutdown")
                    raise ShuttingDownError(
                        "server is draining; request refused"
                    )
                if self._inflight < self.max_inflight:
                    break
                remaining = deadline - monotonic()
                if remaining <= 0:
                    self._note_rejection(t0)
                    self.rejected_overload += 1
                    if rec.enabled:
                        rec.count("server.rejected.overload")
                    raise OverloadedError(
                        f"server at max_inflight={self.max_inflight}; "
                        f"queued {self.queue_timeout_s * 1000.0:g} ms "
                        "without a slot"
                    )
                self._waiting += 1
                try:
                    self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
            self._inflight += 1
            self.admitted += 1
            degraded = self._under_pressure_locked()
            if degraded:
                self.degraded += 1
            queued_ms = (monotonic() - t0) * 1000.0
            if rec.enabled:
                rec.count("server.admitted")
                rec.observe("server.queued_ms", queued_ms)
                rec.set_gauge("server.inflight", self._inflight)
                if degraded:
                    rec.count("server.degraded")
        return AdmissionTicket(
            generation=generation, queued_ms=queued_ms, degraded=degraded,
        )

    def release(self, ticket: AdmissionTicket) -> None:
        """Return the slot held by ``ticket`` (call after the response
        has been written, so draining implies *answered*)."""
        rec = _obs.RECORDER
        with self._cond:
            self._inflight -= 1
            if rec.enabled:
                rec.set_gauge("server.inflight", self._inflight)
            self._cond.notify_all()

    # -- pressure --------------------------------------------------------

    def _note_rejection(self, now: float) -> None:
        self._rejections.append(now)

    def _under_pressure_locked(self) -> bool:
        cutoff = monotonic() - self.pressure_window_s
        rejections = self._rejections
        while rejections and rejections[0] < cutoff:
            rejections.popleft()
        return bool(rejections)

    def under_pressure(self) -> bool:
        """Whether a rejection happened within the pressure window —
        the sustained-overload signal that degrades admitted work."""
        with self._cond:
            return self._under_pressure_locked()

    # -- draining --------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight requests to finish.
        Returns ``True`` when the last request released within the
        timeout (``None`` = wait forever)."""
        deadline = None if timeout_s is None else monotonic() + timeout_s
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def snapshot(self) -> Dict[str, object]:
        """Counters for the ``stats`` wire op and ``tix serve`` logs."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected_overload": self.rejected_overload,
                "rejected_shutdown": self.rejected_shutdown,
                "degraded": self.degraded,
                "under_pressure": self._under_pressure_locked(),
            }


class StoreGate:
    """Readers-writer gate over one store (module docstring).

    Readers run concurrently; a writer waits for readers to leave and
    excludes everything while it mutates.  Waiting writers block *new*
    readers (no writer starvation).  After the mutation the writer
    eagerly rebuilds the store's lazy index, structure index, and
    statistics catalog, so the rebuild cost is paid once per
    generation bump — never raced among reader threads.
    """

    def __init__(self, store: "XMLStore") -> None:
        self.store = store
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[int]:
        """Enter as a reader; yields the pinned ``store.generation``."""
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            generation = self.store.generation
        try:
            yield generation
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator["XMLStore"]:
        """Enter as the exclusive writer; yields the store to mutate.
        On exit the lazy index/structure/stats are rebuilt before any
        reader re-enters."""
        with self._cond:
            self._writers_waiting += 1
            while self._writing or self._readers > 0:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writing = True
        try:
            yield self.store
        finally:
            try:
                # Readers must never trigger (and race) these builds.
                self.store.index
                self.store.structure
                self.store.stats
            finally:
                with self._cond:
                    self._writing = False
                    self._cond.notify_all()
