"""The threaded query-serving socket server.

:class:`QueryServer` listens on a TCP socket, speaks the
length-prefixed JSON-frame protocol (:mod:`repro.server.protocol`),
and runs every ``query`` request through
:func:`~repro.resilience.run.run_query_guarded` under a per-request
:class:`~repro.resilience.guard.QueryGuard` — the request's
``timeout_ms`` / ``max_rows`` budgets (clamped by server-side caps)
become the guard's budgets, so one slow or hungry client degrades or
fails alone.

Robustness properties:

- **admission control** — requests pass the
  :class:`~repro.server.admission.AdmissionController` before touching
  the engine: queue → typed ``OVERLOADED`` rejection → tightened
  budgets under sustained pressure (the response carries
  ``degraded: true``) → drain on shutdown;
- **pinned read visibility** — each admitted query executes inside
  :meth:`StoreGate.read`, pinned to the ``store.generation`` it
  entered at; :meth:`add_document` / :meth:`remove_document` take the
  gate's write side and rebuild the lazy indexes before readers
  re-enter, so no query ever observes a half-mutated corpus;
- **graceful shutdown** — :meth:`close` stops accepting, drains
  in-flight requests (every accepted request is *answered*), cancels
  stragglers through their guards' cooperative tokens, and only then
  closes sockets;
- **slow-client defense** — connections idle (or stalled mid-frame)
  longer than ``idle_timeout_s`` are closed, so a slowloris peer pins
  one thread for a bounded time only;
- **typed failures** — every engine exception crossing the wire is an
  :func:`~repro.server.protocol.error_response` envelope; a client
  never sees an unexplained disconnect for an in-protocol failure;
- **distributed tracing** — every ``query`` request continues the
  client's propagated trace context (or mints a root trace for old
  clients) in a :class:`~repro.obs.tracestore.TraceStore`: a
  ``server.request`` root span wraps queue wait, gate pin, and the
  guarded run (which contributes cache/compile/execute and
  per-operator spans on the same thread), the response echoes the
  ``trace_id``, audit events are tagged with it, and completed traces
  are retained by the tail-based policy (slow / error /
  degraded / head-sampled) for the ``traces`` wire op and the
  ObsServer's ``/traces`` endpoint.

One thread per connection (requests on a connection answered in
order); the accept loop runs on its own thread.  Guard installation is
thread-local (:mod:`repro.resilience.guard`), so concurrent requests
never cross-contaminate budgets.
"""

from __future__ import annotations

import socket
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from repro import obs as _obs
from repro.errors import (
    DocumentNotFoundError,
    ProtocolError,
    QueryAbortedError,
    TIXError,
)
from repro.obs import events as _events
from repro.obs.tracestore import RetentionPolicy, TraceStore
from repro.resilience import faultinject as _faults
from repro.resilience.guard import CancellationToken, QueryGuard
from repro.server.admission import AdmissionController, StoreGate
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    error_code,
    error_response,
    ok_response,
    parse_trace_context,
    read_frame,
    write_frame,
)

if TYPE_CHECKING:
    from repro.perf.querycache import QueryCache
    from repro.resilience.run import GuardedResult
    from repro.xmldb.document import Document
    from repro.xmldb.store import XMLStore

__all__ = ["QueryServer"]

#: Signature of a pluggable query runner: ``(source, guard) -> result``.
Runner = Callable[[str, QueryGuard], "GuardedResult"]

_KNOWN_OPS = ("query", "ping", "stats", "traces")


class QueryServer:
    """Serve queries over the wire protocol (module docstring).

    :param store: the corpus to serve (its lazy indexes are built on
        :meth:`start`, before the first request);
    :param host: bind address (default loopback);
    :param port: bind port (0 = ephemeral; read :attr:`port` after
        construction);
    :param max_inflight: concurrently executing requests;
    :param queue_timeout_ms: longest a request queues for a slot
        before the typed ``OVERLOADED`` rejection;
    :param default_timeout_ms: guard deadline applied when the request
        names none (``None`` = unbounded);
    :param max_timeout_ms: cap on the deadline a request may ask for;
    :param max_rows_cap: cap on the row budget a request may ask for;
    :param degrade_timeout_ms: deadline forced onto admitted requests
        under sustained overload (tightens a requested deadline by
        ``min``);
    :param degrade_max_rows: row budget forced under sustained
        overload;
    :param idle_timeout_s: close connections idle/stalled this long;
    :param max_frame_bytes: per-frame size ceiling;
    :param cache: optional shared
        :class:`~repro.perf.querycache.QueryCache`;
    :param runner: pluggable execution hook for tests/chaos — defaults
        to the cache (if any) or ``run_query_guarded``;
    :param trace_store: the distributed-trace registry (defaults to a
        fresh :class:`~repro.obs.tracestore.TraceStore` with the
        default tail-retention policy — pass one built with a custom
        :class:`~repro.obs.tracestore.RetentionPolicy` to tune the
        slow threshold / head-sample rate).
    """

    def __init__(self, store: "XMLStore", *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 8,
                 queue_timeout_ms: float = 1000.0,
                 default_timeout_ms: Optional[float] = None,
                 max_timeout_ms: Optional[float] = None,
                 max_rows_cap: Optional[int] = None,
                 degrade_timeout_ms: float = 1000.0,
                 degrade_max_rows: int = 100,
                 idle_timeout_s: float = 30.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 cache: "Optional[QueryCache]" = None,
                 runner: Optional[Runner] = None,
                 trace_store: Optional[TraceStore] = None) -> None:
        self.store = store
        self.cache = cache
        self.trace_store = (
            trace_store if trace_store is not None
            else TraceStore(policy=RetentionPolicy())
        )
        self.default_timeout_ms = default_timeout_ms
        self.max_timeout_ms = max_timeout_ms
        self.max_rows_cap = max_rows_cap
        self.degrade_timeout_ms = degrade_timeout_ms
        self.degrade_max_rows = degrade_max_rows
        self.idle_timeout_s = idle_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self._runner = runner
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            queue_timeout_s=queue_timeout_ms / 1000.0,
        )
        self.gate = StoreGate(store)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.settimeout(0.2)
        self._lock = threading.Lock()
        self._conns: Set[socket.socket] = set()
        self._threads: List[threading.Thread] = []
        self._tokens: Set[CancellationToken] = set()
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = False
        self._closed = False

    # -- addressing ------------------------------------------------------

    @property
    def host(self) -> str:
        return str(self._listener.getsockname()[0])

    @property
    def port(self) -> int:
        return int(self._listener.getsockname()[1])

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "QueryServer":
        """Build the store's lazy indexes, then accept connections on a
        background thread (idempotent)."""
        with self._lock:
            if self._accept_thread is not None:
                return self
            # Build once here so reader threads share finished
            # structures (StoreGate writers rebuild after every
            # mutation).
            self.store.index
            self.store.structure
            self.store.stats
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="tix-query-accept",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def close(self, drain_s: float = 5.0,
              cancel_grace_s: float = 1.0) -> bool:
        """Gracefully shut down: stop accepting, drain in-flight
        requests, cancel stragglers via their guard tokens, close
        sockets.  Returns ``True`` when every in-flight request was
        answered within the drain budget (idempotent)."""
        with self._lock:
            if self._closed:
                return True
            self._closing = True
        thread = self._accept_thread
        if thread is not None:
            thread.join(drain_s + 2.0)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        drained = self.admission.drain(drain_s)
        if not drained:
            # Stragglers: trip their guards cooperatively, then give
            # them a short grace period to surface partial results.
            with self._lock:
                tokens = list(self._tokens)
            for token in tokens:
                token.cancel()
            drained = self.admission.drain(cancel_grace_s)
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
            self._closed = True
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for t in threads:
            t.join(1.0)
        return drained

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- corpus mutation (write side of the gate) ------------------------

    def add_document(self, name: str, source: str) -> "Document":
        """Parse and register a document under exclusive access; the
        lazy indexes are rebuilt before queries resume."""
        with self.gate.write() as store:
            return store.load(name, source)

    def remove_document(self, name_or_id: object) -> "Document":
        """Unregister a document under exclusive access."""
        with self.gate.write() as store:
            return store.remove_document(name_or_id)

    # -- accept / connection loops ---------------------------------------

    def _accept_loop(self) -> None:
        rec = _obs.RECORDER
        while not self._closing:
            try:
                _faults.INJECTOR.fire("server.accept")
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                # Injected accept fault or a racing close: the server
                # keeps serving unless it is shutting down.
                if self._closing:
                    break
                continue
            if rec.enabled:
                rec.count("server.connections")
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="tix-query-conn", daemon=True,
            )
            with self._lock:
                self._conns.add(conn)
                # Prune finished handlers, then track the new one (not
                # started yet, so it must not go through the filter).
                self._threads = [
                    t for t in self._threads if t.is_alive()
                ]
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.idle_timeout_s)
        try:
            while not self._closing:
                try:
                    req = read_frame(conn, self.max_frame_bytes)
                except ProtocolError as exc:
                    # Torn/oversized/non-JSON frame: answer typed, then
                    # close — framing is lost, resync is impossible.
                    self._send(conn, error_response(None, exc))
                    break
                except socket.timeout:
                    break  # idle or slowloris: bounded occupancy
                except OSError:
                    break
                if req is None:
                    break  # clean close at a frame boundary
                if not self._handle_frame(conn, req):
                    break
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            with self._lock:
                self._conns.discard(conn)

    # -- request handling ------------------------------------------------

    def _handle_frame(self, conn: socket.socket,
                      req: Dict[str, Any]) -> bool:
        """Answer one request frame.  Returns ``False`` when the
        connection must close (response could not be written)."""
        t0 = perf_counter()
        rid = req.get("id")
        raw_op = req.get("op")
        op = raw_op if raw_op in _KNOWN_OPS else "other"
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count(f"server.requests.{op}")
        trace_id = ""
        version = req.get("v")
        if not isinstance(version, int) or not (
                1 <= version <= PROTOCOL_VERSION):
            sent = self._send(conn, error_response(
                rid,
                ProtocolError(f"unsupported protocol version {version!r}"),
                code="BAD_REQUEST",
            ))
        elif op == "ping":
            sent = self._send(conn, ok_response(
                rid, pong=True, generation=self.store.generation,
                draining=self.admission.draining,
            ))
        elif op == "stats":
            sent = self._send(conn, ok_response(
                rid, stats=self.admission.snapshot(),
            ))
        elif op == "traces":
            sent = self._handle_traces(conn, rid, req)
        elif op == "query":
            sent, trace_id = self._handle_query(conn, rid, req)
        else:
            sent = self._send(conn, error_response(
                rid, ProtocolError(f"unknown op {raw_op!r}"),
                code="BAD_REQUEST",
            ))
        if rec.enabled:
            # The trace-id exemplar joins a latency outlier in the
            # histogram back to its (retained) trace.
            rec.observe("server.request_ms",
                        (perf_counter() - t0) * 1000.0,
                        exemplar=trace_id or None)
        return sent

    def _handle_traces(self, conn: socket.socket, rid: Any,
                       req: Dict[str, Any]) -> bool:
        """Answer a ``traces`` op: the store snapshot, or one trace by
        id (full span tree, or Chrome ``traceEvents`` when the request
        asks for ``format: "chrome"``)."""
        trace_id = req.get("trace_id")
        if trace_id is None:
            limit = req.get("limit")
            limit = int(limit) if isinstance(limit, (int, float)) else 50
            return self._send(conn, ok_response(
                rid, traces=self.trace_store.snapshot(limit=limit),
            ))
        trace = self.trace_store.get(str(trace_id))
        if trace is None:
            return self._send(conn, error_response(
                rid,
                DocumentNotFoundError(
                    f"no in-flight or retained trace {trace_id!r} "
                    f"(dropped, evicted, or never seen)"
                ),
            ))
        payload = (
            trace.to_chrome_trace() if req.get("format") == "chrome"
            else trace.to_dict()
        )
        return self._send(conn, ok_response(rid, traces=payload))

    def _handle_query(self, conn: socket.socket, rid: Any,
                      req: Dict[str, Any]) -> "tuple[bool, str]":
        """Answer one ``query`` request under its own trace.  Returns
        ``(sent, trace_id)``."""
        source = req.get("q")
        if not isinstance(source, str) or not source.strip():
            return self._send(conn, error_response(
                rid, ProtocolError("query op requires a non-empty 'q'"),
                code="BAD_REQUEST",
            )), ""
        rec = _obs.RECORDER
        # Continue the client's propagated context, or mint a root
        # trace for old clients (parse_trace_context → None).
        trace = self.trace_store.begin(
            parse_trace_context(req), op="query",
            query_sha256=_events.query_hash(source),
        )
        tid = trace.trace_id
        root = (
            rec.begin_span("server.request", trace_id=tid,
                           attempt=trace.attempt)
            if rec.enabled else None
        )
        _events.set_trace_id(tid)
        outcome = "error"
        err_code = ""
        degraded = False
        truncated = False
        try:
            qspan = rec.begin_span("queue.wait") if rec.enabled else None
            try:
                ticket = self.admission.admit(self.store.generation)
            except TIXError as exc:  # OverloadedError / ShuttingDownError
                rec.end_span(qspan)
                err_code = error_code(exc)
                return self._send(conn, error_response(
                    rid, exc, trace_id=tid)), tid
            trace.queued_ms = ticket.queued_ms
            if qspan is not None:
                qspan.attrs["queued_ms"] = round(ticket.queued_ms, 3)
            rec.end_span(qspan)
            token = CancellationToken()
            with self._lock:
                self._tokens.add(token)
            try:
                timeout_ms, max_rows, degrade = self._budgets(req, ticket)
                degraded = ticket.degraded
                gspan = rec.begin_span("gate.pin") if rec.enabled else None
                with self.gate.read() as generation:
                    if gspan is not None:
                        gspan.attrs["generation"] = generation
                    rec.end_span(gspan)
                    guard = QueryGuard(
                        timeout_ms=timeout_ms, max_rows=max_rows,
                        token=token, degrade=degrade,
                    )
                    try:
                        res = self._run(source, guard)
                    except QueryAbortedError as exc:
                        # Strict-mode guard trip: typed, never a
                        # disconnect.
                        err_code = error_code(exc)
                        return self._send(conn, error_response(
                            rid, exc, generation=generation,
                            trace_id=tid)), tid
                    except TIXError as exc:
                        err_code = error_code(exc)
                        return self._send(conn, error_response(
                            rid, exc, generation=generation,
                            trace_id=tid)), tid
                    except Exception as exc:  # defensive: INTERNAL
                        err_code = error_code(exc)
                        return self._send(conn, error_response(
                            rid, exc, generation=generation,
                            trace_id=tid)), tid
                    with_scores = bool(req.get("with_scores", False))
                    rows = [self._row(t, with_scores) for t in res.results]
                    truncated = res.truncated
                    outcome = "truncated" if truncated else "ok"
                    return self._send(conn, ok_response(
                        rid, rows=rows, n=len(rows),
                        truncated=res.truncated, reason=res.reason,
                        degraded=ticket.degraded, generation=generation,
                        queued_ms=round(ticket.queued_ms, 3),
                        trace_id=tid,
                    )), tid
            finally:
                with self._lock:
                    self._tokens.discard(token)
                # Released only after the response write: a drain that
                # completes implies every admitted request was
                # *answered*.
                self.admission.release(ticket)
        finally:
            _events.set_trace_id("")
            if root is not None:
                rec.end_span(root)
                # Hand the finished span tree to the trace store and
                # free the tracer's max_spans budget — a long-running
                # server must not exhaust it.
                trace.root = root
                tracer = getattr(rec, "tracer", None)
                if tracer is not None:
                    tracer.detach(root)
            self.trace_store.complete(
                trace, outcome=outcome, error_code=err_code,
                degraded=degraded, truncated=truncated,
            )

    def _budgets(self, req: Dict[str, Any], ticket: Any,
                 ) -> "tuple[Optional[float], Optional[int], bool]":
        """Resolve the request's guard budgets against the server caps
        and the admission ticket's degradation verdict."""
        timeout_ms = req.get("timeout_ms")
        timeout_ms = (
            float(timeout_ms) if timeout_ms is not None
            else self.default_timeout_ms
        )
        if self.max_timeout_ms is not None:
            timeout_ms = (
                self.max_timeout_ms if timeout_ms is None
                else min(timeout_ms, self.max_timeout_ms)
            )
        max_rows = req.get("max_rows")
        max_rows = int(max_rows) if max_rows is not None else None
        if self.max_rows_cap is not None:
            max_rows = (
                self.max_rows_cap if max_rows is None
                else min(max_rows, self.max_rows_cap)
            )
        degrade = bool(req.get("degrade", True))
        if ticket.degraded:
            # Sustained overload: tighten budgets and force partial
            # results so the server sheds load instead of dying.
            timeout_ms = (
                self.degrade_timeout_ms if timeout_ms is None
                else min(timeout_ms, self.degrade_timeout_ms)
            )
            max_rows = (
                self.degrade_max_rows if max_rows is None
                else min(max_rows, self.degrade_max_rows)
            )
            degrade = True
        return timeout_ms, max_rows, degrade

    def _run(self, source: str, guard: QueryGuard) -> "GuardedResult":
        if self._runner is not None:
            return self._runner(source, guard)
        if self.cache is not None:
            return self.cache.run_query_guarded(source, guard)
        from repro.resilience.run import run_query_guarded

        return run_query_guarded(self.store, source, guard)

    @staticmethod
    def _row(tree: object, with_scores: bool) -> Dict[str, Any]:
        score = getattr(tree, "score", None)
        to_xml = getattr(tree, "to_xml", None)
        xml = (
            to_xml(with_scores=with_scores) if callable(to_xml)
            else str(tree)
        )
        return {"score": score, "xml": xml}

    def _send(self, conn: socket.socket, resp: Dict[str, Any]) -> bool:
        rec = _obs.RECORDER
        if rec.enabled and not resp.get("ok"):
            code = resp.get("error", {}).get("code", "INTERNAL")
            rec.count(f"server.errors.{code}")
        try:
            write_frame(conn, resp, self.max_frame_bytes)
            return True
        except (ProtocolError, OSError):
            return False
