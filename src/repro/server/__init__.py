"""Query-serving layer: wire protocol, admission control, client pool.

``repro.server`` turns the engine into a *database server*: a
length-prefixed JSON-frame protocol (:mod:`repro.server.protocol`), a
threaded socket server that runs every request through the resilience
layer's :class:`~repro.resilience.guard.QueryGuard`
(:mod:`repro.server.server`), a semaphore-bounded admission controller
with a queue → reject → degrade → drain overload ladder
(:mod:`repro.server.admission`), and a pooled client with
health-checked checkout, jittered retries, and a circuit breaker
(:mod:`repro.server.client`).  :mod:`repro.server.loadtest` drives a
client fleet against a live server.

See ``docs/robustness.md`` ("Serving and admission control") for the
frame formats, the error taxonomy, and the overload ladder.
"""

from repro.server.admission import AdmissionController, StoreGate
from repro.server.client import CircuitBreaker, Connection, PooledClient
from repro.server.loadtest import LoadtestReport, run_loadtest
from repro.server.protocol import (
    PROTOCOL_VERSION,
    error_code,
    exception_for,
    read_frame,
    write_frame,
)
from repro.server.server import QueryServer

__all__ = [
    "AdmissionController", "StoreGate",
    "CircuitBreaker", "Connection", "PooledClient",
    "LoadtestReport", "run_loadtest",
    "PROTOCOL_VERSION", "error_code", "exception_for",
    "read_frame", "write_frame",
    "QueryServer",
]
